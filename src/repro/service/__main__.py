"""``python -m repro.service`` — run the resolver daemon from the CLI.

Prints the final :class:`~repro.service.daemon.ServiceReport` as JSON
on stdout; ``--events-out`` additionally streams the deterministic
event log as JSONL.  ``--http-port`` serves the live control plane
(``/status.json`` service view, ``/metrics``) while the run executes.
"""

from __future__ import annotations

import argparse
import json
import sys

from .config import ServiceConfig
from .daemon import ResolverService


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="long-lived resolver daemon on the simulated substrate",
    )
    parser.add_argument("--seed", type=int, default=2022)
    parser.add_argument("--duration", type=float, default=3600.0,
                        help="virtual seconds to serve (default 3600)")
    parser.add_argument("--catalog-size", type=int, default=400)
    parser.add_argument("--zipf-s", type=float, default=1.1)
    parser.add_argument("--base-qps", type=float, default=8.0)
    parser.add_argument("--diurnal-period", type=float, default=1800.0)
    parser.add_argument("--diurnal-depth", type=float, default=0.5)
    parser.add_argument("--workers", type=int, default=8)
    parser.add_argument("--cache-capacity", type=int, default=8192)
    parser.add_argument("--cache-eviction", choices=("random", "lru"), default="lru")
    parser.add_argument("--stale-ttl", type=float, default=3600.0,
                        help="RFC 8767 serve-stale window; 0 disables")
    parser.add_argument("--negative-ttl", type=float, default=900.0)
    parser.add_argument("--prefetch-interval", type=float, default=30.0,
                        help="prefetch sweep cadence; 0 disables")
    parser.add_argument("--prefetch-threshold", type=float, default=60.0)
    parser.add_argument("--prefetch-min-hits", type=int, default=3)
    parser.add_argument("--deltas", type=int, default=0,
                        help="zone deltas to publish, evenly spaced")
    parser.add_argument("--revalidation", choices=("incremental", "flush", "off"),
                        default="incremental")
    parser.add_argument("--dnssec", action="store_true",
                        help="validate every upstream resolution against the "
                             "chain of trust")
    parser.add_argument("--blackout", action="append", default=[],
                        metavar="START:END",
                        help="upstream blackout window in virtual seconds "
                             "(repeatable), e.g. --blackout 1200:1800")
    parser.add_argument("--oracle-check", type=int, default=0, metavar="K",
                        help="shadow every Kth upstream resolution against "
                             "the differential oracle (0 = off)")
    parser.add_argument("--status-interval", type=float, default=60.0)
    parser.add_argument("--no-warm", action="store_true",
                        help="skip the t=0 catalog warm-up")
    parser.add_argument("--events-out", metavar="PATH",
                        help="write the event log as JSONL")
    parser.add_argument("--http-port", type=int, default=None,
                        help="serve the live control plane on this port "
                             "(0 = ephemeral)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the report on stdout")
    return parser


def config_from_args(args: argparse.Namespace) -> ServiceConfig:
    blackouts = []
    for spec in args.blackout:
        try:
            start_text, _, end_text = spec.partition(":")
            blackouts.append((float(start_text), float(end_text)))
        except ValueError:
            raise SystemExit(f"bad --blackout window {spec!r} (want START:END)")
    return ServiceConfig(
        seed=args.seed,
        duration=args.duration,
        catalog_size=args.catalog_size,
        zipf_s=args.zipf_s,
        base_qps=args.base_qps,
        diurnal_period=args.diurnal_period,
        diurnal_depth=args.diurnal_depth,
        workers=args.workers,
        cache_capacity=args.cache_capacity,
        cache_eviction=args.cache_eviction,
        stale_ttl=args.stale_ttl if args.stale_ttl > 0 else None,
        negative_ttl=args.negative_ttl,
        prefetch_interval=args.prefetch_interval,
        prefetch_threshold=args.prefetch_threshold,
        prefetch_min_hits=args.prefetch_min_hits,
        deltas=args.deltas,
        revalidation=args.revalidation,
        dnssec=args.dnssec,
        blackouts=tuple(blackouts),
        oracle_check_every=args.oracle_check,
        status_interval=args.status_interval,
        warm_catalog=not args.no_warm,
    )


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    service = ResolverService(config_from_args(args))

    telemetry = None
    if args.http_port is not None:
        from ..obs.server import TelemetryServer

        telemetry = TelemetryServer(
            status=service.status_snapshot,
            metrics=lambda: (
                service.publish_metrics()
                or service.registry.render_prometheus()
            ),
            port=args.http_port,
        ).start()
        print(f"control plane: {telemetry.url}", file=sys.stderr)

    try:
        report = service.run()
    finally:
        if telemetry is not None:
            telemetry.stop()

    if args.events_out:
        with open(args.events_out, "w", encoding="utf-8") as handle:
            for row in report.events:
                handle.write(json.dumps(row, sort_keys=True) + "\n")
    if not args.quiet:
        json.dump(report.to_json(), sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    return 1 if report.divergences else 0


if __name__ == "__main__":
    raise SystemExit(main())
