"""Service-mode configuration (the ``python -m repro.service`` flags).

Mirrors the batch framework's ``ScanConfig`` idiom: one dataclass, all
virtual-time quantities in seconds, every random draw derived from
``seed`` through named streams — so one integer pins the entire run.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ServiceConfig:
    """Everything a resolver-service run depends on."""

    seed: int = 2022
    #: Virtual seconds the daemon serves before draining.
    duration: float = 3600.0

    # -- client population -------------------------------------------------
    #: Distinct names the stub clients query (corpus slice ``[0, n)``).
    catalog_size: int = 400
    #: Zipf exponent of the query mix (rank-frequency skew).
    zipf_s: float = 1.1
    #: Mean client arrival rate at the diurnal midpoint, queries/second.
    base_qps: float = 8.0
    #: Period of the diurnal load curve (one virtual "day").
    diurnal_period: float = 1800.0
    #: Peak-to-trough swing, ``0 <= depth < 1``: the instantaneous rate
    #: is ``base_qps * (1 + depth * sin(...))``, phased to start at the
    #: trough (the service warms up during the quiet night).
    diurnal_depth: float = 0.5

    # -- resolver pool -----------------------------------------------------
    workers: int = 8
    cores: int = 4
    cache_capacity: int = 8192
    cache_eviction: str = "lru"
    retries: int = 2
    #: Resolve the whole catalog once at t=0 (cache warming); warm jobs
    #: are excluded from client-facing latency and availability stats.
    warm_catalog: bool = True

    # -- cache lifetimes ---------------------------------------------------
    #: RFC 8767 serve-stale window past expiry (None disables).
    stale_ttl: float | None = 3600.0
    #: RFC 2308 negative-cache TTL for NXDOMAIN/NODATA outcomes.
    negative_ttl: float = 900.0

    # -- prefetch ----------------------------------------------------------
    #: Sweep cadence; 0 disables prefetch entirely.
    prefetch_interval: float = 30.0
    #: Refresh an entry when its remaining TTL drops to/below this...
    prefetch_threshold: float = 60.0
    #: ...and it drew at least this many hits since it was stored.
    prefetch_min_hits: int = 3

    # -- zone deltas and revalidation --------------------------------------
    #: Zone mutations published over the run, evenly spaced unless
    #: ``delta_times`` pins them explicitly.
    deltas: int = 0
    delta_times: tuple[float, ...] = ()
    #: ``incremental`` (invalidate only the affected delegation
    #: subtree), ``flush`` (drop the whole cache — comparison
    #: baseline), or ``off`` (publish but do not revalidate).
    revalidation: str = "incremental"

    # -- DNSSEC ------------------------------------------------------------
    #: Validate every upstream resolution against the chain of trust
    #: (DO bit on every query, security memos in the cache, RRSIG-aware
    #: answer TTLs).  Off = byte-identical pre-DNSSEC behaviour.
    dnssec: bool = False

    # -- adversity ---------------------------------------------------------
    #: Upstream blackout windows ``(start, end)``: every authoritative
    #: server stops answering inside each window.
    blackouts: tuple[tuple[float, float], ...] = ()

    # -- observation -------------------------------------------------------
    #: Shadow every Kth upstream resolution against the differential
    #: oracle (0 disables; the oracle builds a second universe).
    oracle_check_every: int = 0
    #: Event-log interval summary cadence.
    status_interval: float = 60.0
    metrics: bool = True
    #: Codec fidelity of the simulated fabric (see SimNetwork).
    wire_mode: str = "sampled"
    #: Simulator event budget (guards runaway configurations).
    max_events: int = 30_000_000

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.catalog_size < 1:
            raise ValueError("catalog_size must be positive")
        if self.base_qps <= 0:
            raise ValueError("base_qps must be positive")
        if not 0.0 <= self.diurnal_depth < 1.0:
            raise ValueError("diurnal_depth must be in [0, 1)")
        if self.workers < 1:
            raise ValueError("need at least one worker")
        if self.revalidation not in ("incremental", "flush", "off"):
            raise ValueError(f"unknown revalidation mode {self.revalidation!r}")
        for window in self.blackouts:
            start, end = window
            if end <= start:
                raise ValueError(f"empty blackout window {window!r}")

    def resolved_delta_times(self) -> tuple[float, ...]:
        """Explicit ``delta_times``, or ``deltas`` spread evenly across
        the run (never at t=0, never at the very end)."""
        if self.delta_times:
            return tuple(sorted(self.delta_times))
        if self.deltas <= 0:
            return ()
        step = self.duration / (self.deltas + 1)
        return tuple(step * (i + 1) for i in range(self.deltas))

    def to_json(self) -> dict:
        return {
            "seed": self.seed,
            "duration": self.duration,
            "catalog_size": self.catalog_size,
            "zipf_s": self.zipf_s,
            "base_qps": self.base_qps,
            "diurnal_period": self.diurnal_period,
            "diurnal_depth": self.diurnal_depth,
            "workers": self.workers,
            "cache_capacity": self.cache_capacity,
            "cache_eviction": self.cache_eviction,
            "stale_ttl": self.stale_ttl,
            "negative_ttl": self.negative_ttl,
            "prefetch_interval": self.prefetch_interval,
            "prefetch_threshold": self.prefetch_threshold,
            "prefetch_min_hits": self.prefetch_min_hits,
            "deltas": list(self.resolved_delta_times()),
            "revalidation": self.revalidation,
            "dnssec": self.dnssec,
            "blackouts": [list(w) for w in self.blackouts],
            "oracle_check_every": self.oracle_check_every,
        }
