"""The resolver daemon: long-lived caching resolution in virtual time.

Architecture, in one pass:

* An **arrival process** draws exponential interarrivals at a
  diurnally modulated rate and Zipf-picks a catalog name per arrival —
  the stub-client population.
* A **worker pool** (one simulator routine per worker, each with its
  own long-lived simulated socket) serves jobs from a shared queue:
  fresh cache hit, negative-cache hit, or a full iterative resolution
  through the shared :class:`~repro.core.cache.SelectiveCache`.  When
  upstream resolution *fails*, and only then, the worker may serve the
  RFC 8767 stale copy — bounded by the cache's ``stale_ttl``, never
  rejuvenated by being served.
* A **prefetch sweep** periodically walks the catalog and re-resolves
  hot entries whose remaining TTL fell under the threshold, through a
  cache view whose ``get_answer`` is blind (the refresh must actually
  go upstream).  A failed prefetch stores nothing, so a stale entry
  can never be refreshed into a *younger* stale entry.
* A **delta routine** publishes zone mutations
  (:func:`repro.ecosystem.publish_zone_delta`) at fixed virtual times,
  mirrors each into the differential oracle, and revalidates: the
  incremental path drops only the affected delegation subtree
  (``invalidate_subtree``), the baseline drops everything (``flush``),
  and both re-resolve the affected catalog names.
* **Blackout windows** become a :class:`repro.faults.FaultPlan` of
  all-server :class:`~repro.faults.Blackout` directives; availability
  during them is accounted separately, with the RFC 8767 eligibility
  rule (a name the service *never* successfully served has nothing
  stale to serve, so it does not count against serve-stale).

Everything runs on one :class:`~repro.net.Simulator`; every random
draw comes from a stream derived from ``config.seed`` — two runs with
the same config produce byte-identical event logs and metrics dumps.
"""

from __future__ import annotations

import bisect
import hashlib
import json
import math
import random
from collections import deque
from dataclasses import dataclass, field

from ..core import ClientCostModel, IterativeMachine, ResolverConfig, SelectiveCache, SimDriver
from ..dnslib import Name, RRType
from ..ecosystem import (
    EPOCH_BASE,
    EcosystemParams,
    ZoneDelta,
    build_internet,
    publish_zone_delta,
)
from ..faults import Blackout, FaultInjector, FaultPlan
from ..net import CPUModel, SimFuture, SimUDPSocket, SourceIPPool, derive_seed
from ..obs.metrics import NULL_REGISTRY, MetricsRegistry
from ..oracle import SEMANTIC_STATUSES, DifferentialOracle
from ..workloads import CorpusConfig, DomainCorpus
from .config import ServiceConfig

__all__ = ["ResolverService", "ServiceReport", "run_service"]

_A = RRType.A


@dataclass(frozen=True)
class _Job:
    """One unit of worker work."""

    kind: str  # "client" | "warm" | "prefetch" | "revalidate"
    index: int  # catalog index
    created: float


class _UpstreamOnlyCache:
    """A view of the cache whose positive-answer read path is blind.

    Prefetch and revalidation must *re-resolve*: if the machine saw the
    (still live, about to expire) cached answer it would return it
    untouched and nothing would refresh.  Writes, delegations, and the
    negative path pass straight through to the real cache.
    """

    __slots__ = ("_cache",)

    def __init__(self, cache: SelectiveCache):
        self._cache = cache

    def get_answer(self, qname, qtype):
        return None

    def __getattr__(self, name):
        return getattr(self._cache, name)


@dataclass
class ServiceReport:
    """Everything a finished service run reports."""

    config: dict
    counters: dict
    availability: dict
    cache: dict
    network: dict
    oracle: dict
    deltas: list = field(default_factory=list)
    divergences: list = field(default_factory=list)
    events: list = field(default_factory=list)
    metrics: dict = field(default_factory=dict)
    virtual_elapsed: float = 0.0

    def to_json(self) -> dict:
        return {
            "config": self.config,
            "virtual_elapsed": round(self.virtual_elapsed, 6),
            "counters": self.counters,
            "availability": self.availability,
            "cache": self.cache,
            "network": self.network,
            "oracle": self.oracle,
            "deltas": self.deltas,
            "divergences": self.divergences,
            "events": self.events,
            "metrics": self.metrics,
        }

    def determinism_digest(self) -> str:
        """SHA-256 over the canonical JSON of the full report — two
        runs of the same config must produce the same digest."""
        blob = json.dumps(self.to_json(), sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()


class ResolverService:
    """One long-lived resolver-service run (see module docstring)."""

    def __init__(self, config: ServiceConfig | None = None,
                 registry: MetricsRegistry | None = None):
        self.config = config or ServiceConfig()
        cfg = self.config
        self.registry = registry or (
            MetricsRegistry(enabled=True) if cfg.metrics else NULL_REGISTRY
        )

        self.internet = build_internet(
            params=EcosystemParams(seed=cfg.seed),
            wire_mode=cfg.wire_mode,
            net_seed=derive_seed(cfg.seed, "net"),
        )
        self.sim = self.internet.sim
        self.cache = SelectiveCache(
            capacity=cfg.cache_capacity,
            policy="all",
            eviction=cfg.cache_eviction,
            seed=derive_seed(cfg.seed, "cache") % (2**31),
            clock=lambda: self.sim.now,
            stale_ttl=cfg.stale_ttl,
            track_heat=cfg.prefetch_interval > 0,
            epoch_base=EPOCH_BASE if cfg.dnssec else None,
        )
        corpus = DomainCorpus(CorpusConfig(seed=cfg.seed))
        self._catalog_text: list[str] = list(corpus.fqdns(cfg.catalog_size))
        self._catalog: list[Name] = [Name.from_text(t) for t in self._catalog_text]
        #: cumulative Zipf weights over catalog ranks (corpus order =
        #: rank order: the generator emits popular bases first)
        weights = [1.0 / (rank + 1) ** cfg.zipf_s for rank in range(cfg.catalog_size)]
        total = sum(weights)
        cumulative, acc = [], 0.0
        for w in weights:
            acc += w / total
            cumulative.append(acc)
        cumulative[-1] = 1.0
        self._zipf_cdf = cumulative

        self._cpu = CPUModel(self.sim, cores=cfg.cores)
        self._pool = SourceIPPool(prefix_length=32)
        self._driver = SimDriver(
            self.internet.network,
            cpu=self._cpu,
            costs=ClientCostModel.for_iterative(),
            seed=derive_seed(cfg.seed, "driver") % (2**31),
        )
        self._resolver_config = ResolverConfig(
            retries=cfg.retries, collect_trace=False, dnssec=cfg.dnssec
        )
        if cfg.dnssec:
            from ..core import trust_anchor_for

            self._resolver_config.trust_anchor = trust_anchor_for(self.internet.synth)

        if cfg.blackouts:
            plan = FaultPlan(
                directives=[
                    Blackout(servers=("*",), start=start, end=end)
                    for start, end in cfg.blackouts
                ],
                name="service-blackouts",
            )
            FaultInjector(
                plan, sim=self.sim, seed=derive_seed(cfg.seed, "chaos") % (2**31)
            ).attach(self.internet.network)

        self.oracle = (
            DifferentialOracle(seed=cfg.seed, dnssec=cfg.dnssec)
            if cfg.oracle_check_every > 0
            else None
        )

        # -- run state -----------------------------------------------------
        self._queue: deque[_Job] = deque()
        self._waiters: deque[SimFuture] = deque()
        self._stopping = False
        self._prefetch_pending: set[int] = set()
        self._ever_served: set[int] = set()
        self._delta_times = cfg.resolved_delta_times()
        self._latency = self.registry.scope("service").histogram("latency")

        # -- counters (mirrored into the registry at publish time) ---------
        self.counters = {
            "queries": 0,  # client queries only
            "served": 0,
            "failed": 0,
            "fresh_hits": 0,
            "negative_hits": 0,
            "resolved": 0,
            "resolved_negative": 0,
            "stale_answers_served": 0,
            "stale_negatives_served": 0,
            "warm_jobs": 0,
            "prefetch_scheduled": 0,
            "prefetch_refreshed": 0,
            "prefetch_failed": 0,
            "revalidate_jobs": 0,
            "deltas_published": 0,
            "upstream_resolutions": 0,
            "oracle_checked": 0,
        }
        self.blackout = {
            "queries": 0,
            "served": 0,
            "eligible": 0,
            "eligible_served": 0,
        }
        self.events: list[dict] = []
        self.deltas: list[dict] = []
        self.divergences: list[dict] = []

    # -- public API --------------------------------------------------------

    def run(self) -> ServiceReport:
        """Execute the whole run to completion and report."""
        cfg = self.config
        sim = self.sim
        if cfg.warm_catalog:
            for index in range(len(self._catalog)):
                self._queue.append(_Job("warm", index, 0.0))
        for wid in range(cfg.workers):
            sim.spawn(self._worker(wid))
        sim.spawn(self._arrivals())
        if cfg.prefetch_interval > 0:
            sim.spawn(self._prefetch_sweep())
        if self._delta_times:
            sim.spawn(self._delta_routine())
        if cfg.status_interval > 0:
            sim.spawn(self._interval_log())
        sim.spawn(self._controller())
        sim.run(max_events=cfg.max_events)
        return self._report()

    def status_snapshot(self) -> dict:
        """The live ``/status.json`` service view (read-only; safe to
        call from the telemetry thread while the run loops)."""
        counters = dict(self.counters)
        stats = self.cache.stats
        return {
            "service": {
                "virtual_now": round(self.sim.now, 3),
                "duration": self.config.duration,
                "workers": self.config.workers,
                "queue_depth": len(self._queue),
                "counters": counters,
                "blackout": dict(self.blackout),
                "cache": {
                    "size": len(self.cache),
                    "hit_rate": round(stats.hit_rate, 4),
                    "stale_hits": stats.stale_hits,
                    "invalidated": stats.invalidated,
                    "expired": stats.expired,
                },
                "deltas_published": counters["deltas_published"],
                "revalidation": self.config.revalidation,
            },
            "run": {
                "mode": "service",
                "seed": self.config.seed,
                "module": "A",
            },
        }

    # -- load generation ---------------------------------------------------

    def _rate(self, t: float) -> float:
        cfg = self.config
        phase = 2.0 * math.pi * t / cfg.diurnal_period - math.pi / 2.0
        return cfg.base_qps * (1.0 + cfg.diurnal_depth * math.sin(phase))

    def _arrivals(self):
        cfg = self.config
        interarrival = random.Random(derive_seed(cfg.seed, "arrivals"))
        mix = random.Random(derive_seed(cfg.seed, "mix"))
        while True:
            yield interarrival.expovariate(self._rate(self.sim.now))
            if self._stopping or self.sim.now >= cfg.duration:
                return
            index = bisect.bisect_left(self._zipf_cdf, mix.random())
            self._submit(_Job("client", index, self.sim.now))

    def _submit(self, job: _Job) -> None:
        if self._stopping:
            return
        if self._waiters:
            self._waiters.popleft().set_result(job)
        else:
            self._queue.append(job)

    def _controller(self):
        yield self.config.duration
        self._stopping = True
        while self._waiters:
            self._waiters.popleft().set_result(None)

    # -- the worker pool ---------------------------------------------------

    def _worker(self, wid: int):
        socket = SimUDPSocket(self.internet.network, self._pool)
        rng = random.Random(derive_seed(self.config.seed, "worker", str(wid)))
        try:
            while True:
                if self._queue:
                    job = self._queue.popleft()
                elif self._stopping:
                    return
                else:
                    future = SimFuture()
                    self._waiters.append(future)
                    job = yield future
                    if job is None:
                        return
                yield from self._serve(job, socket, rng)
        finally:
            socket.close()

    def _in_blackout(self, t: float) -> bool:
        for start, end in self.config.blackouts:
            if start <= t < end:
                return True
        return False

    def _serve(self, job: _Job, socket: SimUDPSocket, rng: random.Random):
        cfg = self.config
        counters = self.counters
        qname = self._catalog[job.index]
        client = job.kind == "client"
        blackout = client and self._in_blackout(job.created)
        # RFC 8767 eligibility is judged at arrival: a name the service
        # had never successfully served has nothing stale to offer
        eligible = blackout and job.index in self._ever_served
        if client:
            counters["queries"] += 1
            if blackout:
                self.blackout["queries"] += 1
                if eligible:
                    self.blackout["eligible"] += 1
        elif job.kind == "warm":
            counters["warm_jobs"] += 1
        elif job.kind == "revalidate":
            counters["revalidate_jobs"] += 1

        outcome = None
        if job.kind in ("client", "warm"):
            if self.cache.get_answer(qname, _A) is not None:
                outcome = "fresh_hit"
                counters["fresh_hits"] += 1
            elif self.cache.get_negative(qname, _A) is not None:
                outcome = "negative_hit"
                counters["negative_hits"] += 1

        if outcome is None:
            cache = (
                _UpstreamOnlyCache(self.cache)
                if job.kind in ("prefetch", "revalidate")
                else self.cache
            )
            machine = IterativeMachine(
                cache, self.internet.root_ips, self._resolver_config, rng
            )
            result = yield from self._driver.execute(
                machine.resolve(qname, _A), socket
            )
            counters["upstream_resolutions"] += 1
            status = str(result.status)
            if status in SEMANTIC_STATUSES:
                if status == "NOERROR" and result.answers:
                    outcome = "resolved"
                    counters["resolved"] += 1
                else:
                    # NXDOMAIN, or NODATA (NOERROR with an empty answer
                    # section): cache the negative outcome (RFC 2308)
                    self.cache.put_negative(qname, _A, status, cfg.negative_ttl)
                    outcome = "resolved_negative"
                    counters["resolved_negative"] += 1
                self._shadow_check(qname, result)
            elif job.kind not in ("client", "warm"):
                # a failed prefetch/revalidation serves nobody: do not
                # probe (and count) the stale window on its behalf
                outcome = "failed"
            else:
                # upstream failure — and only now — may serve stale
                stale = self.cache.get_stale_answer(qname, _A)
                if stale is not None:
                    outcome = "stale_answer"
                    counters["stale_answers_served"] += 1
                else:
                    stale_negative = self.cache.get_stale_negative(qname, _A)
                    if stale_negative is not None:
                        outcome = "stale_negative"
                        counters["stale_negatives_served"] += 1
                    else:
                        outcome = "failed"

        if job.kind == "prefetch":
            self._prefetch_pending.discard(job.index)
            if outcome in ("resolved", "resolved_negative"):
                counters["prefetch_refreshed"] += 1
            else:
                counters["prefetch_failed"] += 1
            return

        served = outcome != "failed"
        if served:
            self._ever_served.add(job.index)
        if client:
            if served:
                counters["served"] += 1
            else:
                counters["failed"] += 1
            if blackout and served:
                self.blackout["served"] += 1
                if eligible:
                    self.blackout["eligible_served"] += 1
            self._latency.observe(max(self.sim.now - job.created, 1e-9))

    def _shadow_check(self, qname: Name, result) -> None:
        oracle = self.oracle
        if oracle is None:
            return
        every = self.config.oracle_check_every
        if self.counters["upstream_resolutions"] % every != 0:
            return
        self.counters["oracle_checked"] += 1
        divergence = oracle.check(qname, _A, result, combo={"mode": "service"})
        if divergence is not None:
            row = divergence.to_row()
            row["t"] = round(self.sim.now, 6)
            self.divergences.append(row)
            self.events.append(row)

    # -- prefetch ----------------------------------------------------------

    def _prefetch_sweep(self):
        cfg = self.config
        while True:
            yield cfg.prefetch_interval
            if self._stopping:
                return
            for index, qname in enumerate(self._catalog):
                if index in self._prefetch_pending:
                    continue
                heat = self.cache.answer_heat(qname, _A)
                if heat is None:
                    continue
                remaining, hits = heat
                # live entries only: a stale-retained entry reports
                # remaining <= 0 and must age until a client-path
                # failure path or an upstream success touches it
                if 0.0 < remaining <= cfg.prefetch_threshold and hits >= cfg.prefetch_min_hits:
                    self._prefetch_pending.add(index)
                    self.counters["prefetch_scheduled"] += 1
                    self._submit(_Job("prefetch", index, self.sim.now))

    # -- zone deltas and revalidation --------------------------------------

    def _delta_routine(self):
        cfg = self.config
        rng = random.Random(derive_seed(cfg.seed, "deltas"))
        synth = self.internet.synth
        for when in self._delta_times:
            delay = when - self.sim.now
            if delay > 0:
                yield delay
            if self._stopping:
                return
            index = rng.randrange(len(self._catalog))
            base = synth.base_domain_of(self._catalog[index])
            if base is None:
                continue
            generation = publish_zone_delta(self.internet, base)
            if self.oracle is not None:
                self.oracle.note_zone_change(base)
            self.counters["deltas_published"] += 1
            base_text = base.to_text(omit_final_dot=True)
            dropped = 0
            affected: list[int] = []
            if cfg.revalidation != "off":
                suffix = base.canonical_key()
                n = len(suffix)
                affected = [
                    i
                    for i, name in enumerate(self._catalog)
                    if name.canonical_key()[-n:] == suffix
                ]
                if cfg.revalidation == "incremental":
                    dropped = self.cache.invalidate_subtree(base)
                else:
                    dropped = self.cache.flush()
                for i in affected:
                    self._submit(_Job("revalidate", i, self.sim.now))
            delta = ZoneDelta(
                seq=self.counters["deltas_published"],
                time=self.sim.now,
                base=base_text,
                generation=generation,
            )
            row = delta.to_row()
            row["mode"] = cfg.revalidation
            row["entries_dropped"] = dropped
            row["revalidate_names"] = len(affected)
            self.deltas.append(row)
            self.events.append(row)

    # -- observation -------------------------------------------------------

    def _interval_log(self):
        cfg = self.config
        while True:
            yield cfg.status_interval
            if self._stopping:
                return
            c = self.counters
            self.events.append(
                {
                    "event": "interval",
                    "t": round(self.sim.now, 6),
                    "queries": c["queries"],
                    "served": c["served"],
                    "failed": c["failed"],
                    "fresh_hits": c["fresh_hits"],
                    "stale_served": c["stale_answers_served"]
                    + c["stale_negatives_served"],
                    "upstream": c["upstream_resolutions"],
                    "cache_size": len(self.cache),
                    "cache_hit_rate": round(self.cache.stats.hit_rate, 4),
                }
            )

    def publish_metrics(self) -> None:
        """Mirror run state into the registry (``service.*`` scopes)."""
        scope = self.registry.scope("service")
        for key, value in self.counters.items():
            scope.gauge(key).set(value)
        blackout = scope.scope("blackout")
        for key, value in self.blackout.items():
            blackout.gauge(key).set(value)
        self.cache.publish_metrics(scope.scope("cache"))
        if self.oracle is not None:
            self.oracle.publish_metrics(scope.scope("oracle"))

    def _report(self) -> ServiceReport:
        self.publish_metrics()
        stats = self.cache.stats
        net = self.internet.network.stats
        availability = dict(self.blackout)
        availability["eligible_availability"] = (
            round(self.blackout["eligible_served"] / self.blackout["eligible"], 6)
            if self.blackout["eligible"]
            else None
        )
        availability["raw_availability"] = (
            round(self.blackout["served"] / self.blackout["queries"], 6)
            if self.blackout["queries"]
            else None
        )
        return ServiceReport(
            config=self.config.to_json(),
            counters=dict(self.counters),
            availability=availability,
            cache={
                "size": len(self.cache),
                "hits": stats.hits,
                "misses": stats.misses,
                "answer_hits": stats.answer_hits,
                "answer_misses": stats.answer_misses,
                "hit_rate": round(stats.hit_rate, 6),
                "expired": stats.expired,
                "evictions": stats.evictions,
                "stale_hits": stats.stale_hits,
                "invalidated": stats.invalidated,
            },
            network={
                "udp_queries": net.udp_queries,
                "tcp_queries": net.tcp_queries,
                "server_drops": net.server_drops,
            },
            oracle=self.oracle.stats() if self.oracle is not None else {},
            deltas=list(self.deltas),
            divergences=list(self.divergences),
            events=list(self.events),
            metrics=self.registry.snapshot() if self.registry.enabled else {},
            virtual_elapsed=self.sim.now,
        )


def run_service(config: ServiceConfig | None = None) -> ServiceReport:
    """Build, run, and report one service run."""
    return ResolverService(config).run()
