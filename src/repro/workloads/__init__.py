"""repro.workloads — deterministic scan target generation: the CT-log
style domain corpus (Table 3) and the IPv4 PTR space."""

from .corpus import (
    FQDNS_PER_DOMAIN,
    CorpusCensus,
    CorpusConfig,
    DomainCorpus,
    census,
)
from .ipv4 import PUBLIC_IPV4_COUNT, is_public, permuted_ipv4, ptr_names

__all__ = [
    "CorpusCensus",
    "CorpusConfig",
    "DomainCorpus",
    "FQDNS_PER_DOMAIN",
    "PUBLIC_IPV4_COUNT",
    "census",
    "is_public",
    "permuted_ipv4",
    "ptr_names",
]
