"""Workload generation: the certificate-transparency-style domain
corpus of Appendix A (Table 3) and the IPv4 PTR target space.

The paper's corpus is 234M FQDNs from browser-trusted certificates,
mapping to 93M base domains across 1702 TLDs, split 55% legacy gTLD /
39% ccTLD / 6% new gTLD.  The generator reproduces those *shares* over
a deterministic synthetic population of any requested size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..ecosystem import rand
from ..ecosystem.params import CCTLDS, LEGACY_GTLDS, NGTLDS, TLD_CLASS_WEIGHTS
from ..ecosystem.zonegen import SUBDOMAIN_LABELS

#: Average FQDNs per base domain in the paper: 234M / 93M ~= 2.5.
FQDNS_PER_DOMAIN = 2.5

_CLASS_TLDS = {
    "legacy": LEGACY_GTLDS,
    "cc": CCTLDS,
    "ng": NGTLDS,
}


@dataclass(frozen=True)
class CorpusConfig:
    seed: int = 2022
    #: Probability an emitted FQDN is the bare base domain.
    p_apex: float = 0.40


class DomainCorpus:
    """Deterministic, index-addressable synthetic CT-log corpus."""

    def __init__(self, config: CorpusConfig | None = None):
        self.config = config or CorpusConfig()

    def _family(self, index: int) -> int:
        """FQDNs are folded into families of ~2.5 sharing a base domain,
        matching the paper's 234M FQDNs over 93M base domains."""
        return int(index / FQDNS_PER_DOMAIN)

    def tld_for(self, index: int) -> tuple[str, str]:
        """(tld, class) of the index-th FQDN, following Table 3 weights.

        Drawn per *family* so that all FQDNs of one base domain share
        its TLD.
        """
        seed = self.config.seed
        family = self._family(index)
        cls = rand.weighted_choice(seed, TLD_CLASS_WEIGHTS, "tldclass", family)
        tld = rand.weighted_choice(seed, _CLASS_TLDS[cls], "tld", cls, family)
        return tld, cls

    def base_domain(self, index: int) -> str:
        """The registrable domain the index-th FQDN belongs to."""
        tld, _cls = self.tld_for(index)
        family = self._family(index)
        token = rand.h64(self.config.seed, "base", tld, family) % 10_000_000
        return f"d{token}-{family}.{tld}"

    def fqdn(self, index: int) -> str:
        """The index-th fully qualified domain name."""
        base = self.base_domain(index)
        seed = self.config.seed
        if rand.uniform(seed, "apex", index) < self.config.p_apex:
            return base
        label = rand.choice(seed, SUBDOMAIN_LABELS, "sub", index)
        return f"{label}.{base}"

    def fqdns(self, count: int, start: int = 0) -> Iterator[str]:
        for index in range(start, start + count):
            yield self.fqdn(index)

    def base_domains(self, count: int, start: int = 0) -> Iterator[str]:
        """Distinct base domains (for base-domain studies like CAA)."""
        seen: set[str] = set()
        index = start
        while len(seen) < count:
            base = self.base_domain(index)
            if base not in seen:
                seen.add(base)
                yield base
            index += 1


@dataclass
class CorpusCensus:
    """Table 3: corpus breakdown by TLD class."""

    fqdns: dict[str, int]
    domains: dict[str, int]
    tlds: dict[str, int]

    def row(self, cls: str) -> tuple[int, int, int]:
        return self.fqdns[cls], self.domains[cls], self.tlds[cls]

    @property
    def total_fqdns(self) -> int:
        return sum(self.fqdns.values())

    @property
    def total_domains(self) -> int:
        return sum(self.domains.values())


def census(corpus: DomainCorpus, sample: int) -> CorpusCensus:
    """Tabulate a corpus prefix the way Table 3 does."""
    fqdns = {"legacy": 0, "cc": 0, "ng": 0}
    domains_seen: dict[str, set[str]] = {"legacy": set(), "cc": set(), "ng": set()}
    tlds_seen: dict[str, set[str]] = {"legacy": set(), "cc": set(), "ng": set()}
    for index in range(sample):
        tld, cls = corpus.tld_for(index)
        fqdns[cls] += 1
        domains_seen[cls].add(corpus.base_domain(index))
        tlds_seen[cls].add(tld)
    return CorpusCensus(
        fqdns=fqdns,
        domains={cls: len(values) for cls, values in domains_seen.items()},
        tlds={cls: len(values) for cls, values in tlds_seen.items()},
    )
