"""IPv4 PTR scan targets.

The paper queries PTR records for the full public IPv4 space (3.7B
addresses).  Like ZMap, targets are emitted in a pseudorandom
permutation so load spreads across reverse zones; the permutation is a
bijective affine map over the 32-bit space (deterministic, seekable,
zero memory)."""

from __future__ import annotations

from typing import Iterator

#: Multiplier for the affine permutation: any odd constant is a
#: bijection mod 2**32; this one mixes octets well.
_MULTIPLIER = 2_654_435_761  # Knuth's golden-ratio hash constant (odd)

#: First octets excluded as non-public (loopback, RFC1918 10/8, etc.).
_EXCLUDED_FIRST_OCTETS = frozenset({0, 10, 127} | set(range(224, 256)))


def is_public(first_octet: int) -> bool:
    """Whether addresses with this first octet are publicly routable."""
    return first_octet not in _EXCLUDED_FIRST_OCTETS


def permuted_ipv4(count: int, seed: int = 0, start: int = 0) -> Iterator[str]:
    """Yield ``count`` public IPv4 addresses in permuted order.

    ``start`` allows resuming/partitioning a scan, like ZMap shards.
    """
    emitted = 0
    index = start
    while emitted < count:
        value = (_MULTIPLIER * index + seed) & 0xFFFFFFFF
        index += 1
        first = value >> 24
        if not is_public(first):
            continue
        yield f"{first}.{(value >> 16) & 255}.{(value >> 8) & 255}.{value & 255}"
        emitted += 1


def ptr_names(count: int, seed: int = 0, start: int = 0) -> Iterator[str]:
    """The same targets as in-addr.arpa names (raw PTR module input)."""
    for ip in permuted_ipv4(count, seed, start):
        a, b, c, d = ip.split(".")
        yield f"{d}.{c}.{b}.{a}.in-addr.arpa"


#: Size of the public IPv4 space the paper scans.
PUBLIC_IPV4_COUNT = 3_700_000_000
