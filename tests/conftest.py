"""Shared pytest configuration: the tier-1 runtime audit.

Tier-1 (`pytest` with the default ``-m 'not soak and not slow'``) is the
gate every change must keep fast.  Long-running tests belong behind the
``soak`` or ``slow`` markers; anything unmarked that takes longer than
the budget is a marker bug, and this audit turns it into a hard session
failure instead of silent CI rot.
"""

import pytest

#: Wall-clock budget for one unmarked tier-1 test (seconds).
TIER1_TEST_BUDGET_S = 30.0

#: Markers that exempt a test from the tier-1 budget.
_EXEMPT_MARKERS = ("soak", "slow")

_budget_violations: list[tuple[str, float]] = []


def pytest_runtest_logreport(report):
    if report.when != "call" or report.duration <= TIER1_TEST_BUDGET_S:
        return
    if any(marker in report.keywords for marker in _EXEMPT_MARKERS):
        return
    _budget_violations.append((report.nodeid, report.duration))


def pytest_sessionfinish(session, exitstatus):
    if not _budget_violations:
        return
    reporter = session.config.pluginmanager.get_plugin("terminalreporter")
    if reporter is not None:
        reporter.section("tier-1 runtime audit", sep="=")
        for nodeid, duration in _budget_violations:
            reporter.write_line(
                f"UNMARKED SLOW TEST: {nodeid} took {duration:.1f}s "
                f"(budget {TIER1_TEST_BUDGET_S:.0f}s) — mark it 'soak' or "
                "'slow', or make it faster"
            )
    if session.exitstatus == 0:
        session.exitstatus = pytest.ExitCode.TESTS_FAILED
