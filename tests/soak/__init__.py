"""Chaos/property soak tests — long-running resilience proofs, excluded
from tier-1 (``pytest -m soak`` to run them)."""
