"""The chaos soak: a 10k-name scan under escalating fault plans.

Proves the resolver *degrades gracefully* rather than falling over:

* **no hang** — every scan completes within a generous event budget
  (:class:`repro.net.HangError` otherwise);
* **no unhandled exception** — worker crashes surface via
  ``future.result()`` inside the runner and would fail the test;
* **total accounting** — every name terminates with a classified
  :class:`repro.core.Status`;
* **monotonic-ish degradation** — success rate falls (within slack) as
  the fault ladder escalates, and hard outages never make the scan
  *better* than baseline;
* **determinism differential** — the same ``(seed, plan)`` replays
  byte-identically, and disabled faults are equivalent to an empty
  plan.

Run with ``pytest -m soak tests/soak`` (tier-1 excludes the marker).
"""

import json

import pytest

from repro.core import Status
from repro.ecosystem import EcosystemParams, build_internet
from repro.faults import FaultInjector, FaultPlan, escalation_ladder
from repro.framework import ScanConfig, ScanRunner
from repro.workloads import CorpusConfig, DomainCorpus

pytestmark = pytest.mark.soak

NAMES = 10_000
SEED = 2022
#: ~20 events per query and ~6 queries per chaotic lookup, ×10 slack.
MAX_EVENTS = 60_000_000
VALID_STATUSES = {str(status) for status in Status}


def corpus():
    return DomainCorpus(CorpusConfig(seed=SEED)).fqdns(NAMES)


def run_scan(plan: FaultPlan | None, attach_injector: bool = True):
    """One full scan; returns (jsonl_lines, report, injector)."""
    internet = build_internet(params=EcosystemParams(seed=SEED))
    injector = None
    if plan is not None and attach_injector:
        injector = FaultInjector(plan, sim=internet.sim, seed=SEED)
        injector.attach(internet.network)
    lines: list[str] = []
    config = ScanConfig(
        threads=500,
        seed=SEED,
        backoff_base=0.05,
        server_health=True,
        max_events=MAX_EVENTS,
    )
    report = ScanRunner(
        internet, config, sink=lambda row: lines.append(json.dumps(row, sort_keys=True))
    ).run(corpus())
    return lines, report, injector


@pytest.fixture(scope="module")
def ladder_reports():
    """Run the whole escalation ladder once; tests share the results."""
    results = {}
    for plan in escalation_ladder():
        results[plan.name] = run_scan(plan)
    return results


class TestEscalationLadder:
    def test_every_name_terminates_classified(self, ladder_reports):
        for name, (lines, report, _) in ladder_reports.items():
            assert report.stats.total == NAMES, f"{name}: lost lookups"
            assert len(lines) == NAMES, f"{name}: sink rows missing"
            assert sum(report.stats.by_status.values()) == NAMES, name
            unknown = set(report.stats.by_status) - VALID_STATUSES
            assert not unknown, f"{name}: unclassified statuses {unknown}"
            for line in lines:
                assert "status" in json.loads(line), f"{name}: row without status"

    def test_faults_actually_fired(self, ladder_reports):
        for name, (_, _, injector) in ladder_reports.items():
            if name == "baseline":
                assert injector.total_activations() == 0
            else:
                assert injector.total_activations() > 0, name

    def test_degradation_is_monotonic_ish(self, ladder_reports):
        order = [plan.name for plan in escalation_ladder()]
        rates = [ladder_reports[name][1].stats.success_rate for name in order]
        # escalation may not strictly reduce success (retries absorb mild
        # plans), but it must never *improve* on baseline by more than
        # noise, and the harshest plan must visibly hurt
        baseline = rates[0]
        assert baseline > 0.9, f"baseline unexpectedly unhealthy: {rates}"
        for name, rate in zip(order[1:], rates[1:]):
            assert rate <= baseline + 0.02, f"{name} beat baseline: {rates}"
        for earlier, later, a, b in zip(order, order[1:], rates, rates[1:]):
            assert b <= a + 0.05, (
                f"success rate rose {earlier}->{later}: {rates}"
            )
        assert rates[-1] < baseline - 0.05, f"extreme plan had no bite: {rates}"

    def test_virtual_duration_grows_under_adversity(self, ladder_reports):
        order = [plan.name for plan in escalation_ladder()]
        baseline = ladder_reports[order[0]][1].stats.duration
        extreme = ladder_reports[order[-1]][1].stats.duration
        assert extreme > baseline, (baseline, extreme)


class TestDeterminismDifferential:
    def test_same_seed_same_plan_byte_identical(self, ladder_reports):
        plan = escalation_ladder()[3]  # severe
        lines_again, report_again, injector_again = run_scan(plan)
        lines, report, injector = ladder_reports[plan.name]
        assert lines == lines_again
        assert report.stats.duration == report_again.stats.duration
        assert injector.counts == injector_again.counts

    def test_disabled_faults_equal_empty_plan(self, ladder_reports):
        no_injector_lines, no_injector_report, _ = run_scan(None)
        empty_lines, empty_report, injector = run_scan(FaultPlan.empty())
        assert no_injector_lines == empty_lines
        assert no_injector_report.stats.duration == empty_report.stats.duration
        assert injector.total_activations() == 0
        # and both match the ladder's baseline run
        baseline_lines, baseline_report, _ = ladder_reports["baseline"]
        assert baseline_lines == empty_lines
        assert baseline_report.stats.duration == empty_report.stats.duration
