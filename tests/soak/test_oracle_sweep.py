"""Nightly differential-oracle sweep: the full policy × eviction ×
fault-plan matrix over enough generated names that the acceptance bar
(≥ 5,000 names with zero divergences) is met in one run.

Tier-1 excludes this via the ``slow`` marker; run it with::

    PYTHONPATH=src pytest -m slow tests/soak
"""

import pytest

from repro.oracle import DifferentialConfig, run_differential

pytestmark = pytest.mark.slow


def test_full_matrix_sweep_has_no_divergences():
    config = DifferentialConfig(
        seed=2022,
        # 12 combinations x 420 names = 5,040 distinct names checked
        names=420,
        policies=("selective", "all", "none"),
        evictions=("random", "lru"),
        fault_plans=(None, "moderate"),
    )
    report = run_differential(config)
    assert report.names_checked >= 5_000
    assert report.ok, "\n".join(
        f"{d.name} [{d.combo}]: {d.reason}" for d in report.divergences[:20]
    )
    # the sweep must actually exercise the semantic path, not just
    # shrug at fabric losses
    assert report.agreed > report.checks * 0.8
