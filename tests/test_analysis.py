"""Tests for the Section 5 / Section 6 case-study analyses."""

import pytest

from repro.analysis import run_caa_study, run_ns_consistency_study
from repro.ecosystem import EcosystemParams, build_internet
from repro.workloads import CorpusConfig, DomainCorpus


@pytest.fixture(scope="module")
def corpus():
    return DomainCorpus(CorpusConfig(seed=21))


@pytest.fixture()
def internet():
    return build_internet(params=EcosystemParams(seed=21), wire_mode="never")


class TestNSConsistency:
    @pytest.fixture(scope="class")
    def findings(self, corpus):
        internet = build_internet(params=EcosystemParams(seed=21), wire_mode="never")
        names = list(corpus.base_domains(6000))
        return run_ns_consistency_study(internet, names, threads=800, seed=7)

    def test_scans_everything(self, findings):
        assert findings.domains_scanned == 6000
        assert findings.domains_resolvable > 4000

    def test_availability_rate_in_paper_band(self, findings):
        # paper: 0.55% of resolvable domains need >=2 retries on some NS
        assert 0.001 < findings.frac_needing_2plus < 0.02

    def test_severe_cases_are_rare(self, findings):
        # paper: 0.01% need all 10 retries
        assert findings.frac_needing_max < 0.005

    def test_consistency_high(self, findings):
        # paper: >99.99% consistent; scaled sample allows a little slack
        assert findings.frac_consistent > 0.995

    def test_json_shape(self, findings):
        data = findings.to_json()
        assert {"pct_needing_2plus_retries", "pct_consistent_answers",
                "worst_case_providers"} <= set(data)


class TestCAAStudy:
    @pytest.fixture(scope="class")
    def findings(self, corpus):
        internet = build_internet(params=EcosystemParams(seed=21), wire_mode="never")
        bases = list(corpus.base_domains(12_000))
        return run_caa_study(internet, bases, threads=800, seed=7)

    def test_caa_rate_near_paper(self, findings):
        # paper: 1.69% of NOERROR domains hold CAA
        assert 0.008 < findings.caa_rate < 0.03

    def test_cctlds_half_of_caa(self, findings):
        # paper: ccTLDs contribute 48% of CAA records
        assert 0.35 < findings.cctld_share_of_caa < 0.70

    def test_pl_share(self, findings):
        # paper: .pl holds 25% of ccTLD CAA records
        assert 0.12 < findings.pl_share_of_cc_caa < 0.45

    def test_top10_cc_share(self, findings):
        # paper: top 10 ccTLDs hold 70% of ccTLD CAA domains
        assert findings.top10_cc_share > 0.55

    def test_cctld_more_likely(self, findings):
        assert findings.cctld_rate_vs_gtld() > 1.05

    def test_tag_mix(self, findings):
        data = findings.to_json()
        assert data["pct_issue"] > 90  # paper: 96.8%
        assert 40 < data["pct_issuewild"] < 70  # paper: 55.27%
        assert data["pct_iodef"] < 15  # paper: 6.87%

    def test_letsencrypt_dominates(self, findings):
        assert findings.to_json()["pct_issue_letsencrypt"] > 85  # paper: 92.4%

    def test_comodo_digicert_over_a_third(self, findings):
        data = findings.to_json()
        assert data["pct_domains_comodo"] > 35  # paper: >50%
        assert data["pct_domains_digicert"] > 35
