"""Meta-tests on the public API surface: exports exist, are documented,
and the package version is coherent."""

import importlib
import inspect

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.baselines",
    "repro.core",
    "repro.dnslib",
    "repro.ecosystem",
    "repro.framework",
    "repro.modules",
    "repro.net",
    "repro.obs",
    "repro.oracle",
    "repro.workloads",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    for name in getattr(package, "__all__", []):
        assert hasattr(package, name), f"{package_name}.{name} missing"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_package_has_docstring(package_name):
    package = importlib.import_module(package_name)
    assert package.__doc__ and len(package.__doc__.strip()) > 20


@pytest.mark.parametrize("package_name", PACKAGES)
def test_public_classes_and_functions_documented(package_name):
    package = importlib.import_module(package_name)
    undocumented = []
    for name in getattr(package, "__all__", []):
        item = getattr(package, name)
        if inspect.isclass(item) or inspect.isfunction(item):
            if not (item.__doc__ or "").strip():
                undocumented.append(f"{package_name}.{name}")
    assert not undocumented, undocumented


def test_version():
    assert repro.__version__.count(".") == 2


def test_module_registry_covers_paper_footnote():
    """Every record type from the paper's footnote has a raw module."""
    from repro.modules import available_modules
    from repro.modules.raw import RAW_MODULE_TYPES

    assert len(RAW_MODULE_TYPES) >= 62
    modules = set(available_modules())
    for rrtype in RAW_MODULE_TYPES:
        assert rrtype.name in modules
