"""Meta-tests on the public API surface: exports exist, are documented,
and the package version is coherent."""

import importlib
import inspect

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.baselines",
    "repro.core",
    "repro.dnslib",
    "repro.ecosystem",
    "repro.framework",
    "repro.modules",
    "repro.net",
    "repro.obs",
    "repro.oracle",
    "repro.workloads",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    for name in getattr(package, "__all__", []):
        assert hasattr(package, name), f"{package_name}.{name} missing"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_package_has_docstring(package_name):
    package = importlib.import_module(package_name)
    assert package.__doc__ and len(package.__doc__.strip()) > 20


@pytest.mark.parametrize("package_name", PACKAGES)
def test_public_classes_and_functions_documented(package_name):
    package = importlib.import_module(package_name)
    undocumented = []
    for name in getattr(package, "__all__", []):
        item = getattr(package, name)
        if inspect.isclass(item) or inspect.isfunction(item):
            if not (item.__doc__ or "").strip():
                undocumented.append(f"{package_name}.{name}")
    assert not undocumented, undocumented


def test_version():
    assert repro.__version__.count(".") == 2


def test_codec_exports_present():
    """The wire-codec rewrite's public surface: batch decode, header
    peeks, lazy views, stats, and the cache reset hook."""
    import repro.dnslib as dnslib

    for name in (
        "CODEC_STATS",
        "LazyResourceRecord",
        "clear_codec_caches",
        "decode_many",
        "peek_header",
        "peek_txid",
        "parse_zone_lines",
    ):
        assert name in dnslib.__all__, f"repro.dnslib.__all__ missing {name}"
        assert hasattr(dnslib, name)


def test_lazy_view_invariants():
    """Structural invariants of the lazy record view: it *is* a
    ResourceRecord (isinstance-based consumers keep working), rdata is
    a cached property rather than a plain slot, and the codec stats
    expose every counter the benchmarks read."""
    from repro.dnslib import CODEC_STATS, LazyResourceRecord, ResourceRecord

    assert issubclass(LazyResourceRecord, ResourceRecord)
    assert isinstance(inspect.getattr_static(LazyResourceRecord, "rdata"), property)
    # slots-only: no per-instance __dict__ to bloat million-record scans
    assert "__slots__" in vars(LazyResourceRecord)
    assert "__dict__" not in dir(LazyResourceRecord)
    for counter in (
        "decode_calls",
        "decode_scans",
        "encode_calls",
        "encode_serialises",
        "lazy_records",
        "lazy_hydrations",
    ):
        assert counter in CODEC_STATS


def test_module_registry_covers_paper_footnote():
    """Every record type from the paper's footnote has a raw module."""
    from repro.modules import available_modules
    from repro.modules.raw import RAW_MODULE_TYPES

    assert len(RAW_MODULE_TYPES) >= 62
    modules = set(available_modules())
    for rrtype in RAW_MODULE_TYPES:
        assert rrtype.name in modules
