"""Tests for the AXFR and open-resolver modules."""

import random

import pytest

from repro.core import ResolverConfig, SelectiveCache
from repro.core.engine import SimDriver
from repro.dnslib import Name, RRType, parse_zone
from repro.ecosystem import EcosystemParams, build_internet
from repro.ecosystem.staticzone import StaticZoneServer
from repro.modules import ModuleContext, get_module
from repro.net import LatencyModel, SimUDPSocket, SourceIPPool

ZONE = """\
$ORIGIN transfer.test.
$TTL 300
@    IN SOA ns1.transfer.test. admin.transfer.test. 7 2 3 4 5
@    IN NS  ns1
ns1  IN A   10.7.0.1
@    IN A   192.0.2.50
www  IN A   192.0.2.51
"""


@pytest.fixture(scope="module")
def internet():
    inet = build_internet(params=EcosystemParams(seed=111), wire_mode="never")
    # an (atypically) transfer-permissive static server
    server = StaticZoneServer(parse_zone(ZONE))
    inet.network.register_server("10.7.0.1", server, latency=LatencyModel(median=0.01))
    return inet


def run_module(internet, module_name, raw, **module_attrs):
    module = get_module(module_name)
    for key, value in module_attrs.items():
        setattr(module, key, value)
    context = ModuleContext(
        mode="iterative",
        root_ips=internet.root_ips,
        resolver_ips=[internet.google_ip],
        cache=SelectiveCache(capacity=10_000),
        config=ResolverConfig(retries=1),
        rng=random.Random(2),
    )
    driver = SimDriver(internet.network)
    socket = SimUDPSocket(internet.network, SourceIPPool())
    future = internet.sim.spawn(driver.execute(module.lookup(raw, context), socket))
    internet.sim.run()
    row = future.result()
    row.pop("_result", None)
    return row


class TestAXFR:
    def test_transferable_zone(self, internet):
        row = run_module(internet, "AXFR", "transfer.test@10.7.0.1")
        assert row["data"]["transferable"]
        # SOA twice + NS + 3 A records
        assert row["data"]["record_count"] == 6

    def test_refused_for_wrong_zone(self, internet):
        row = run_module(internet, "AXFR", "other.test@10.7.0.1")
        assert not row["data"]["transferable"]
        assert row["data"]["attempts"][0]["status"] == "REFUSED"

    def test_provider_servers_refuse_axfr(self, internet):
        synth = internet.synth
        base = next(
            Name.from_text(f"ax-{i}.com")
            for i in range(20_000)
            if synth.profile(Name.from_text(f"ax-{i}.com")).exists
        )
        row = run_module(internet, "AXFR", base.to_text(omit_final_dot=True))
        assert not row["data"]["transferable"]
        assert row["data"]["attempts"]

    def test_unresponsive_server(self, internet):
        row = run_module(internet, "AXFR", "transfer.test@10.99.99.99")
        assert row["data"]["attempts"][0]["status"] == "TIMEOUT"


class TestOpenResolver:
    def probe(self, internet, synth):
        for i in range(20_000):
            name = f"probe-{i}.com"
            if synth.profile(Name.from_text(name)).exists:
                return name
        raise AssertionError

    def test_public_resolver_is_open(self, internet):
        probe = self.probe(internet, internet.synth)
        row = run_module(internet, "OPENRESOLVER", "8.8.8.8", probe_name=probe)
        assert row["data"]["classification"] == "open"
        assert row["data"]["recursion_available"] is True

    def test_authoritative_server_is_closed(self, internet):
        synth = internet.synth
        profile = synth.profile(Name.from_text(self.probe(internet, synth)))
        # ask a *different* provider's server: it refuses
        other_index = (profile.provider_index + 1) % len(synth.params.providers)
        server_ip = synth.provider_ns_ip(other_index, 0)
        row = run_module(
            internet, "OPENRESOLVER", server_ip, probe_name=self.probe(internet, synth)
        )
        assert row["data"]["classification"] == "closed"

    def test_dark_address_unresponsive(self, internet):
        row = run_module(internet, "OPENRESOLVER", "203.0.113.250")
        assert row["data"]["classification"] == "unresponsive"
        assert row["status"] == "TIMEOUT"
