"""Tests for the dig / Unbound / MassDNS baseline models."""

import pytest

from repro.baselines import (
    DigBaseline,
    UNBOUND_IP,
    install_unbound,
    massdns_config,
    run_massdns,
)
from repro.ecosystem import EcosystemParams, build_internet
from repro.framework import ScanConfig, ScanRunner
from repro.net import CPUModel
from repro.workloads import CorpusConfig, DomainCorpus


@pytest.fixture()
def internet():
    return build_internet(params=EcosystemParams(seed=13), wire_mode="never")


@pytest.fixture(scope="module")
def corpus():
    return DomainCorpus(CorpusConfig(seed=13))


class TestDig:
    def test_batch_trace_is_sequential_and_slow(self, internet, corpus):
        report = DigBaseline(internet).run_batch_trace(list(corpus.fqdns(10)))
        assert report.stats.total == 10
        # batch dig manages around half a trace per second
        assert report.stats.lookups_per_second < 2.0
        assert report.stats.success_rate > 0.7

    def test_forked_mode_is_faster_but_bounded(self, internet, corpus):
        report = DigBaseline(internet).run_forked(
            list(corpus.fqdns(400)), internet.cloudflare_ip
        )
        rate = report.stats.steady_rate
        assert 30 < rate < 600  # paper: ~120/s
        assert report.stats.success_rate > 0.9

    def test_forked_respects_process_cap(self, internet, corpus):
        report = DigBaseline(internet).run_forked(
            list(corpus.fqdns(50)), internet.cloudflare_ip, processes=8
        )
        assert report.stats.threads_running == 8


class TestUnbound:
    def test_unbound_answers_via_loopback(self, internet, corpus):
        cpu = CPUModel(internet.sim, cores=24)
        install_unbound(internet, cpu)
        config = ScanConfig(
            module="A", mode="external", resolver_ips=[UNBOUND_IP], threads=200, seed=2
        )
        report = ScanRunner(internet, config, cpu=cpu).run(corpus.fqdns(1500))
        assert report.stats.success_rate > 0.9

    def test_unbound_burns_shared_cpu(self, internet, corpus):
        cpu = CPUModel(internet.sim, cores=24)
        install_unbound(internet, cpu)
        config = ScanConfig(
            module="A", mode="external", resolver_ips=[UNBOUND_IP], threads=200, seed=2
        )
        report = ScanRunner(internet, config, cpu=cpu).run(corpus.fqdns(1500))
        # Unbound's per-query CPU dominates the scanner's own
        assert cpu.busy_seconds > 1500 * 3e-3

    def test_unbound_slower_than_iterative_per_cpu(self, corpus):
        """Table 2's ordering: ZDNS iterative beats ZDNS+Unbound."""
        names = list(corpus.fqdns(3000))

        internet_a = build_internet(params=EcosystemParams(seed=13), wire_mode="never")
        cpu = CPUModel(internet_a.sim, cores=24)
        install_unbound(internet_a, cpu)
        config = ScanConfig(
            module="A", mode="external", resolver_ips=[UNBOUND_IP], threads=3000, seed=2
        )
        unbound_rate = ScanRunner(internet_a, config, cpu=cpu).run(names).stats.steady_rate

        internet_b = build_internet(params=EcosystemParams(seed=13), wire_mode="never")
        config = ScanConfig(module="A", mode="iterative", threads=3000, seed=2)
        iterative_rate = ScanRunner(internet_b, config).run(names).stats.steady_rate

        assert iterative_rate > 1.5 * unbound_rate


class TestMassDNS:
    def test_config_shape(self):
        config = massdns_config()
        assert config.retries == 50
        assert config.threads == 50_000
        assert config.external_timeout == 1.0

    def overload_internet(self):
        # scaled-down overload regime: resolver capacity 30K qps vs a
        # 6K-deep massdns window (same ratio as the full-scale bench)
        params = EcosystemParams(seed=13, public_capacity=30_000.0)
        return build_internet(params=params, wire_mode="never")

    def test_massdns_high_rate_low_success(self, corpus):
        internet = self.overload_internet()
        report = run_massdns(
            internet, corpus.fqdns(60_000), internet.google_ip, threads=6000, seed=3
        )
        stats = report.stats
        # raw rate is high, but a sizeable share of names fail (Table 2:
        # ~35% drop/SERVFAIL)
        assert stats.success_rate < 0.92
        assert stats.by_status["SERVFAIL"] > 0.05 * stats.total
        assert stats.steady_rate > 20_000
        assert internet.google.stats.shed > 0

    def test_massdns_failure_rate_worse_than_zdns(self, corpus):
        names = list(corpus.fqdns(30_000))
        params = EcosystemParams(seed=13, public_capacity=30_000.0)

        internet_a = build_internet(params=params, wire_mode="never")
        massdns = run_massdns(internet_a, names, internet_a.google_ip, threads=6000, seed=3)

        # ZDNS's closed loop at moderate concurrency stays under the
        # resolver's capacity and keeps its success rate
        internet_b = build_internet(params=params, wire_mode="never")
        config = ScanConfig(module="A", mode="google", threads=1000, source_prefix=28, seed=3)
        zdns = ScanRunner(internet_b, config).run(names)

        assert zdns.stats.success_rate > massdns.stats.success_rate + 0.02
