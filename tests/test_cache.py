"""Tests for the selective delegation cache."""

import pytest

from repro.core import Delegation, SelectiveCache
from repro.dnslib import DNSClass, Name, ResourceRecord, RRType
from repro.dnslib.rdata.address import A

N = Name.from_text


def delegation(zone: str, *ips: str) -> Delegation:
    ns_names = tuple(N(f"ns{i + 1}.{zone}") for i in range(max(1, len(ips))))
    glue = tuple((ns_names[i], ip) for i, ip in enumerate(ips))
    return Delegation(zone=N(zone), ns_names=ns_names, glue=glue)


class TestDelegation:
    def test_addresses(self):
        entry = delegation("example.com", "1.2.3.4", "5.6.7.8")
        assert entry.addresses() == ["1.2.3.4", "5.6.7.8"]

    def test_glue_for(self):
        entry = delegation("example.com", "1.2.3.4", "5.6.7.8")
        assert entry.glue_for(N("ns1.example.com")) == ["1.2.3.4"]
        assert entry.glue_for(N("ns9.example.com")) == []


class TestBasicOperations:
    def test_put_and_get(self):
        cache = SelectiveCache(capacity=10)
        entry = delegation("com", "192.5.6.30")
        cache.put_delegation(entry)
        assert cache.get_delegation(N("com")) == entry
        assert cache.get_delegation(N("net")) is None

    def test_case_insensitive_zone_keys(self):
        cache = SelectiveCache(capacity=10)
        cache.put_delegation(delegation("Example.COM", "1.1.1.1"))
        assert cache.get_delegation(N("example.com")) is not None

    def test_best_delegation_picks_deepest(self):
        cache = SelectiveCache(capacity=10)
        cache.put_delegation(delegation("com", "1.1.1.1"))
        cache.put_delegation(delegation("example.com", "2.2.2.2"))
        best = cache.best_delegation(N("www.example.com"))
        assert best.zone == N("example.com")

    def test_best_delegation_walks_up(self):
        cache = SelectiveCache(capacity=10)
        cache.put_delegation(delegation("com", "1.1.1.1"))
        best = cache.best_delegation(N("a.b.c.example.com"))
        assert best.zone == N("com")

    def test_best_delegation_miss(self):
        cache = SelectiveCache(capacity=10)
        assert cache.best_delegation(N("example.org")) is None
        assert cache.stats.misses == 1

    def test_hit_and_miss_stats(self):
        cache = SelectiveCache(capacity=10)
        cache.put_delegation(delegation("com", "1.1.1.1"))
        cache.best_delegation(N("a.com"))
        cache.best_delegation(N("b.org"))
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_update_replaces_entry(self):
        cache = SelectiveCache(capacity=10)
        cache.put_delegation(delegation("com", "1.1.1.1"))
        cache.put_delegation(delegation("com", "9.9.9.9"))
        assert cache.get_delegation(N("com")).addresses() == ["9.9.9.9"]
        assert len(cache) == 1


class TestPolicies:
    def test_selective_ignores_answers(self):
        cache = SelectiveCache(capacity=10, policy="selective")
        record = ResourceRecord(N("a.com"), RRType.A, DNSClass.IN, 300, A("1.2.3.4"))
        cache.put_answer(N("a.com"), RRType.A, [record])
        assert cache.get_answer(N("a.com"), RRType.A) is None
        assert len(cache) == 0

    def test_all_policy_caches_answers(self):
        cache = SelectiveCache(capacity=10, policy="all")
        record = ResourceRecord(N("a.com"), RRType.A, DNSClass.IN, 300, A("1.2.3.4"))
        cache.put_answer(N("a.com"), RRType.A, [record])
        assert cache.get_answer(N("a.com"), RRType.A) == [record]

    def test_answer_lookups_are_counted(self):
        """Answer-cache traffic shows up in the stats — previously these
        probes were invisible, so the policy="all" ablation reported a
        hit rate built only from delegation walks."""
        cache = SelectiveCache(capacity=10, policy="all")
        record = ResourceRecord(N("a.com"), RRType.A, DNSClass.IN, 300, A("1.2.3.4"))
        assert cache.get_answer(N("a.com"), RRType.A) is None
        assert cache.stats.answer_misses == 1
        cache.put_answer(N("a.com"), RRType.A, [record])
        assert cache.get_answer(N("a.com"), RRType.A) == [record]
        assert cache.get_answer(N("a.com"), RRType.A) == [record]
        assert cache.stats.answer_hits == 2
        assert cache.stats.answer_misses == 1
        # aggregate hit rate blends delegation and answer probes
        assert cache.stats.hit_rate == pytest.approx(2 / 3)

    def test_selective_policy_records_no_answer_stats(self):
        cache = SelectiveCache(capacity=10, policy="selective")
        assert cache.get_answer(N("a.com"), RRType.A) is None
        assert cache.stats.answer_hits == 0
        assert cache.stats.answer_misses == 0

    def test_answer_hits_refresh_lru_position(self):
        cache = SelectiveCache(capacity=2, policy="all", eviction="lru")
        a = ResourceRecord(N("a.com"), RRType.A, DNSClass.IN, 300, A("1.2.3.4"))
        b = ResourceRecord(N("b.com"), RRType.A, DNSClass.IN, 300, A("5.6.7.8"))
        cache.put_answer(N("a.com"), RRType.A, [a])
        cache.put_answer(N("b.com"), RRType.A, [b])
        assert cache.get_answer(N("a.com"), RRType.A) == [a]  # refresh a
        c = ResourceRecord(N("c.com"), RRType.A, DNSClass.IN, 300, A("9.9.9.9"))
        cache.put_answer(N("c.com"), RRType.A, [c])
        assert cache.get_answer(N("a.com"), RRType.A) == [a]
        assert cache.get_answer(N("b.com"), RRType.A) is None  # b evicted

    def test_none_policy_caches_nothing(self):
        cache = SelectiveCache(capacity=10, policy="none")
        cache.put_delegation(delegation("com", "1.1.1.1"))
        assert cache.get_delegation(N("com")) is None

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            SelectiveCache(policy="bogus")

    def test_invalid_eviction_rejected(self):
        with pytest.raises(ValueError):
            SelectiveCache(eviction="fifo")

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            SelectiveCache(capacity=0)


class TestEviction:
    def test_capacity_is_enforced(self):
        cache = SelectiveCache(capacity=5, eviction="random", seed=1)
        for i in range(50):
            cache.put_delegation(delegation(f"zone{i}.com", "1.1.1.1"))
        assert len(cache) == 5
        assert cache.stats.evictions == 45

    def test_lru_evicts_oldest(self):
        cache = SelectiveCache(capacity=2, eviction="lru")
        cache.put_delegation(delegation("a.com", "1.1.1.1"))
        cache.put_delegation(delegation("b.com", "1.1.1.1"))
        cache.get_delegation(N("a.com"))  # touch a: b becomes LRU
        cache.put_delegation(delegation("c.com", "1.1.1.1"))
        assert cache.get_delegation(N("a.com")) is not None
        assert cache.get_delegation(N("b.com")) is None

    def test_random_eviction_eventually_evicts_hot_entries(self):
        """The Figure 2 mechanism: under random eviction, churn can push
        out hot upper-layer entries; a larger cache makes that rarer."""

        def survival(capacity):
            cache = SelectiveCache(capacity=capacity, eviction="random", seed=7)
            cache.put_delegation(delegation("com", "1.1.1.1"))
            lost = 0
            for i in range(3000):
                cache.put_delegation(delegation(f"z{i}.com", "2.2.2.2"))
                if cache.get_delegation(N("com")) is None:
                    lost += 1
                    cache.put_delegation(delegation("com", "1.1.1.1"))
            return lost

        assert survival(100) > survival(2000)

    def test_eviction_keeps_key_bookkeeping_consistent(self):
        cache = SelectiveCache(capacity=3, eviction="random", seed=3)
        for i in range(100):
            cache.put_delegation(delegation(f"z{i}.com", "1.1.1.1"))
            found = sum(
                1 for j in range(i + 1) if cache.get_delegation(N(f"z{j}.com")) is not None
            )
            assert found == len(cache) <= 3

    def test_mixed_tables_under_lru(self):
        cache = SelectiveCache(capacity=4, policy="all", eviction="lru")
        record = ResourceRecord(N("x.com"), RRType.A, DNSClass.IN, 300, A("1.2.3.4"))
        for i in range(4):
            cache.put_delegation(delegation(f"d{i}.com", "1.1.1.1"))
        cache.put_answer(N("x.com"), RRType.A, [record])
        assert len(cache) == 4

    def test_lru_recency_is_shared_across_tables(self):
        """Regression: "lru" used to evict the oldest entry of whichever
        table happened to be *larger*, so a just-touched delegation
        could be thrown out while a never-read answer survived.  The
        recency order must span both tables."""
        cache = SelectiveCache(capacity=3, policy="all", eviction="lru")
        answer = ResourceRecord(N("a1.com"), RRType.A, DNSClass.IN, 300, A("1.2.3.4"))
        cache.put_delegation(delegation("d1.com", "1.1.1.1"))
        cache.put_delegation(delegation("d2.com", "2.2.2.2"))
        cache.put_answer(N("a1.com"), RRType.A, [answer])
        # touch both delegations: the answer is now globally least recent
        assert cache.get_delegation(N("d1.com")) is not None
        assert cache.get_delegation(N("d2.com")) is not None
        another = ResourceRecord(N("a2.com"), RRType.A, DNSClass.IN, 300, A("5.6.7.8"))
        cache.put_answer(N("a2.com"), RRType.A, [another])
        # pre-fix: the delegation table was larger, so d1 got evicted
        assert cache.get_delegation(N("d1.com")) is not None
        assert cache.get_delegation(N("d2.com")) is not None
        assert cache.get_answer(N("a1.com"), RRType.A) is None


class TestInsertAccounting:
    def test_overwrite_is_an_update_not_an_insert(self):
        """Regression: overwriting a live key used to count as a fresh
        insert, so long scans reported more inserts than the cache had
        ever held entries and the hit-rate denominators drifted."""
        cache = SelectiveCache(capacity=10)
        cache.put_delegation(delegation("com", "1.1.1.1"))
        cache.put_delegation(delegation("com", "9.9.9.9"))
        assert cache.stats.inserts == 1
        assert cache.stats.updates == 1
        assert len(cache) == 1

    def test_answer_overwrite_counted_as_update(self):
        cache = SelectiveCache(capacity=10, policy="all")
        record = ResourceRecord(N("a.com"), RRType.A, DNSClass.IN, 300, A("1.2.3.4"))
        cache.put_answer(N("a.com"), RRType.A, [record])
        cache.put_answer(N("a.com"), RRType.A, [record])
        assert cache.stats.inserts == 1
        assert cache.stats.updates == 1


class TestExpiry:
    """Entry lifetimes against a virtual clock.

    Regression suite: the cache used to have no notion of time at all —
    every entry lived forever, so a scan running longer than a zone's
    TTL kept serving dead delegations (and, under policy="all", stale
    leaf answers)."""

    def _clocked(self, **kwargs):
        now = [0.0]
        cache = SelectiveCache(clock=lambda: now[0], **kwargs)
        return cache, now

    def test_delegation_expires_after_ttl(self):
        cache, now = self._clocked(capacity=10)
        entry = delegation("com", "1.1.1.1")
        entry = Delegation(zone=entry.zone, ns_names=entry.ns_names, glue=entry.glue, ttl=60)
        cache.put_delegation(entry)
        now[0] = 59.9
        assert cache.get_delegation(N("com")) is not None
        now[0] = 60.0  # expiry boundary: TTL seconds after insert is dead
        assert cache.get_delegation(N("com")) is None
        assert cache.stats.expired == 1
        assert len(cache) == 0  # dropped lazily on the probe

    def test_expired_cut_falls_back_to_ancestor(self):
        cache, now = self._clocked(capacity=10)
        com = delegation("com", "1.1.1.1")
        cache.put_delegation(com)  # ttl None: never expires
        deep = delegation("example.com", "2.2.2.2")
        deep = Delegation(zone=deep.zone, ns_names=deep.ns_names, glue=deep.glue, ttl=30)
        cache.put_delegation(deep)
        best = cache.best_delegation(N("www.example.com"))
        assert best.zone == N("example.com")
        now[0] = 31.0
        best = cache.best_delegation(N("www.example.com"))
        assert best is not None and best.zone == N("com")
        assert cache.stats.expired == 1
        assert cache.stats.hits == 2  # the ancestor still counts as a hit

    def test_expiry_walk_can_end_in_a_miss(self):
        cache, now = self._clocked(capacity=10)
        entry = delegation("org", "1.1.1.1")
        entry = Delegation(zone=entry.zone, ns_names=entry.ns_names, glue=entry.glue, ttl=10)
        cache.put_delegation(entry)
        now[0] = 11.0
        assert cache.best_delegation(N("a.org")) is None
        assert cache.stats.misses == 1
        assert cache.stats.expired == 1

    def test_answer_lifetime_is_min_record_ttl(self):
        cache, now = self._clocked(capacity=10, policy="all")
        short = ResourceRecord(N("a.com"), RRType.A, DNSClass.IN, 20, A("1.2.3.4"))
        long = ResourceRecord(N("a.com"), RRType.A, DNSClass.IN, 300, A("5.6.7.8"))
        cache.put_answer(N("a.com"), RRType.A, [short, long])
        now[0] = 19.9
        assert cache.get_answer(N("a.com"), RRType.A) is not None
        now[0] = 20.0
        assert cache.get_answer(N("a.com"), RRType.A) is None
        assert cache.stats.expired == 1
        assert cache.stats.answer_misses == 1

    def test_no_clock_means_no_expiry(self):
        cache = SelectiveCache(capacity=10)
        entry = delegation("com", "1.1.1.1")
        entry = Delegation(zone=entry.zone, ns_names=entry.ns_names, glue=entry.glue, ttl=1)
        cache.put_delegation(entry)
        assert cache.get_delegation(N("com")) is not None  # forever

    def test_overwrite_refreshes_lifetime(self):
        cache, now = self._clocked(capacity=10)
        entry = delegation("com", "1.1.1.1")
        cache.put_delegation(
            Delegation(zone=entry.zone, ns_names=entry.ns_names, glue=entry.glue, ttl=10)
        )
        now[0] = 8.0
        cache.put_delegation(
            Delegation(zone=entry.zone, ns_names=entry.ns_names, glue=entry.glue, ttl=10)
        )
        now[0] = 15.0  # past the first deadline, inside the second
        assert cache.get_delegation(N("com")) is not None
