"""Tests for the selective delegation cache."""

import pytest

from repro.core import Delegation, SelectiveCache
from repro.dnslib import DNSClass, Name, ResourceRecord, RRType
from repro.dnslib.rdata.address import A

N = Name.from_text


def delegation(zone: str, *ips: str) -> Delegation:
    ns_names = tuple(N(f"ns{i + 1}.{zone}") for i in range(max(1, len(ips))))
    glue = tuple((ns_names[i], ip) for i, ip in enumerate(ips))
    return Delegation(zone=N(zone), ns_names=ns_names, glue=glue)


class TestDelegation:
    def test_addresses(self):
        entry = delegation("example.com", "1.2.3.4", "5.6.7.8")
        assert entry.addresses() == ["1.2.3.4", "5.6.7.8"]

    def test_glue_for(self):
        entry = delegation("example.com", "1.2.3.4", "5.6.7.8")
        assert entry.glue_for(N("ns1.example.com")) == ["1.2.3.4"]
        assert entry.glue_for(N("ns9.example.com")) == []


class TestBasicOperations:
    def test_put_and_get(self):
        cache = SelectiveCache(capacity=10)
        entry = delegation("com", "192.5.6.30")
        cache.put_delegation(entry)
        assert cache.get_delegation(N("com")) == entry
        assert cache.get_delegation(N("net")) is None

    def test_case_insensitive_zone_keys(self):
        cache = SelectiveCache(capacity=10)
        cache.put_delegation(delegation("Example.COM", "1.1.1.1"))
        assert cache.get_delegation(N("example.com")) is not None

    def test_best_delegation_picks_deepest(self):
        cache = SelectiveCache(capacity=10)
        cache.put_delegation(delegation("com", "1.1.1.1"))
        cache.put_delegation(delegation("example.com", "2.2.2.2"))
        best = cache.best_delegation(N("www.example.com"))
        assert best.zone == N("example.com")

    def test_best_delegation_walks_up(self):
        cache = SelectiveCache(capacity=10)
        cache.put_delegation(delegation("com", "1.1.1.1"))
        best = cache.best_delegation(N("a.b.c.example.com"))
        assert best.zone == N("com")

    def test_best_delegation_miss(self):
        cache = SelectiveCache(capacity=10)
        assert cache.best_delegation(N("example.org")) is None
        assert cache.stats.misses == 1

    def test_hit_and_miss_stats(self):
        cache = SelectiveCache(capacity=10)
        cache.put_delegation(delegation("com", "1.1.1.1"))
        cache.best_delegation(N("a.com"))
        cache.best_delegation(N("b.org"))
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_update_replaces_entry(self):
        cache = SelectiveCache(capacity=10)
        cache.put_delegation(delegation("com", "1.1.1.1"))
        cache.put_delegation(delegation("com", "9.9.9.9"))
        assert cache.get_delegation(N("com")).addresses() == ["9.9.9.9"]
        assert len(cache) == 1


class TestPolicies:
    def test_selective_ignores_answers(self):
        cache = SelectiveCache(capacity=10, policy="selective")
        record = ResourceRecord(N("a.com"), RRType.A, DNSClass.IN, 300, A("1.2.3.4"))
        cache.put_answer(N("a.com"), RRType.A, [record])
        assert cache.get_answer(N("a.com"), RRType.A) is None
        assert len(cache) == 0

    def test_all_policy_caches_answers(self):
        cache = SelectiveCache(capacity=10, policy="all")
        record = ResourceRecord(N("a.com"), RRType.A, DNSClass.IN, 300, A("1.2.3.4"))
        cache.put_answer(N("a.com"), RRType.A, [record])
        assert cache.get_answer(N("a.com"), RRType.A) == [record]

    def test_answer_lookups_are_counted(self):
        """Answer-cache traffic shows up in the stats — previously these
        probes were invisible, so the policy="all" ablation reported a
        hit rate built only from delegation walks."""
        cache = SelectiveCache(capacity=10, policy="all")
        record = ResourceRecord(N("a.com"), RRType.A, DNSClass.IN, 300, A("1.2.3.4"))
        assert cache.get_answer(N("a.com"), RRType.A) is None
        assert cache.stats.answer_misses == 1
        cache.put_answer(N("a.com"), RRType.A, [record])
        assert cache.get_answer(N("a.com"), RRType.A) == [record]
        assert cache.get_answer(N("a.com"), RRType.A) == [record]
        assert cache.stats.answer_hits == 2
        assert cache.stats.answer_misses == 1
        # aggregate hit rate blends delegation and answer probes
        assert cache.stats.hit_rate == pytest.approx(2 / 3)

    def test_selective_policy_records_no_answer_stats(self):
        cache = SelectiveCache(capacity=10, policy="selective")
        assert cache.get_answer(N("a.com"), RRType.A) is None
        assert cache.stats.answer_hits == 0
        assert cache.stats.answer_misses == 0

    def test_answer_hits_refresh_lru_position(self):
        cache = SelectiveCache(capacity=2, policy="all", eviction="lru")
        a = ResourceRecord(N("a.com"), RRType.A, DNSClass.IN, 300, A("1.2.3.4"))
        b = ResourceRecord(N("b.com"), RRType.A, DNSClass.IN, 300, A("5.6.7.8"))
        cache.put_answer(N("a.com"), RRType.A, [a])
        cache.put_answer(N("b.com"), RRType.A, [b])
        assert cache.get_answer(N("a.com"), RRType.A) == [a]  # refresh a
        c = ResourceRecord(N("c.com"), RRType.A, DNSClass.IN, 300, A("9.9.9.9"))
        cache.put_answer(N("c.com"), RRType.A, [c])
        assert cache.get_answer(N("a.com"), RRType.A) == [a]
        assert cache.get_answer(N("b.com"), RRType.A) is None  # b evicted

    def test_none_policy_caches_nothing(self):
        cache = SelectiveCache(capacity=10, policy="none")
        cache.put_delegation(delegation("com", "1.1.1.1"))
        assert cache.get_delegation(N("com")) is None

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            SelectiveCache(policy="bogus")

    def test_invalid_eviction_rejected(self):
        with pytest.raises(ValueError):
            SelectiveCache(eviction="fifo")

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            SelectiveCache(capacity=0)


class TestEviction:
    def test_capacity_is_enforced(self):
        cache = SelectiveCache(capacity=5, eviction="random", seed=1)
        for i in range(50):
            cache.put_delegation(delegation(f"zone{i}.com", "1.1.1.1"))
        assert len(cache) == 5
        assert cache.stats.evictions == 45

    def test_lru_evicts_oldest(self):
        cache = SelectiveCache(capacity=2, eviction="lru")
        cache.put_delegation(delegation("a.com", "1.1.1.1"))
        cache.put_delegation(delegation("b.com", "1.1.1.1"))
        cache.get_delegation(N("a.com"))  # touch a: b becomes LRU
        cache.put_delegation(delegation("c.com", "1.1.1.1"))
        assert cache.get_delegation(N("a.com")) is not None
        assert cache.get_delegation(N("b.com")) is None

    def test_random_eviction_eventually_evicts_hot_entries(self):
        """The Figure 2 mechanism: under random eviction, churn can push
        out hot upper-layer entries; a larger cache makes that rarer."""

        def survival(capacity):
            cache = SelectiveCache(capacity=capacity, eviction="random", seed=7)
            cache.put_delegation(delegation("com", "1.1.1.1"))
            lost = 0
            for i in range(3000):
                cache.put_delegation(delegation(f"z{i}.com", "2.2.2.2"))
                if cache.get_delegation(N("com")) is None:
                    lost += 1
                    cache.put_delegation(delegation("com", "1.1.1.1"))
            return lost

        assert survival(100) > survival(2000)

    def test_eviction_keeps_key_bookkeeping_consistent(self):
        cache = SelectiveCache(capacity=3, eviction="random", seed=3)
        for i in range(100):
            cache.put_delegation(delegation(f"z{i}.com", "1.1.1.1"))
            found = sum(
                1 for j in range(i + 1) if cache.get_delegation(N(f"z{j}.com")) is not None
            )
            assert found == len(cache) <= 3

    def test_mixed_tables_under_lru(self):
        cache = SelectiveCache(capacity=4, policy="all", eviction="lru")
        record = ResourceRecord(N("x.com"), RRType.A, DNSClass.IN, 300, A("1.2.3.4"))
        for i in range(4):
            cache.put_delegation(delegation(f"d{i}.com", "1.1.1.1"))
        cache.put_answer(N("x.com"), RRType.A, [record])
        assert len(cache) == 4

    def test_lru_recency_is_shared_across_tables(self):
        """Regression: "lru" used to evict the oldest entry of whichever
        table happened to be *larger*, so a just-touched delegation
        could be thrown out while a never-read answer survived.  The
        recency order must span both tables."""
        cache = SelectiveCache(capacity=3, policy="all", eviction="lru")
        answer = ResourceRecord(N("a1.com"), RRType.A, DNSClass.IN, 300, A("1.2.3.4"))
        cache.put_delegation(delegation("d1.com", "1.1.1.1"))
        cache.put_delegation(delegation("d2.com", "2.2.2.2"))
        cache.put_answer(N("a1.com"), RRType.A, [answer])
        # touch both delegations: the answer is now globally least recent
        assert cache.get_delegation(N("d1.com")) is not None
        assert cache.get_delegation(N("d2.com")) is not None
        another = ResourceRecord(N("a2.com"), RRType.A, DNSClass.IN, 300, A("5.6.7.8"))
        cache.put_answer(N("a2.com"), RRType.A, [another])
        # pre-fix: the delegation table was larger, so d1 got evicted
        assert cache.get_delegation(N("d1.com")) is not None
        assert cache.get_delegation(N("d2.com")) is not None
        assert cache.get_answer(N("a1.com"), RRType.A) is None


class TestInsertAccounting:
    def test_overwrite_is_an_update_not_an_insert(self):
        """Regression: overwriting a live key used to count as a fresh
        insert, so long scans reported more inserts than the cache had
        ever held entries and the hit-rate denominators drifted."""
        cache = SelectiveCache(capacity=10)
        cache.put_delegation(delegation("com", "1.1.1.1"))
        cache.put_delegation(delegation("com", "9.9.9.9"))
        assert cache.stats.inserts == 1
        assert cache.stats.updates == 1
        assert len(cache) == 1

    def test_answer_overwrite_counted_as_update(self):
        cache = SelectiveCache(capacity=10, policy="all")
        record = ResourceRecord(N("a.com"), RRType.A, DNSClass.IN, 300, A("1.2.3.4"))
        cache.put_answer(N("a.com"), RRType.A, [record])
        cache.put_answer(N("a.com"), RRType.A, [record])
        assert cache.stats.inserts == 1
        assert cache.stats.updates == 1


class TestExpiry:
    """Entry lifetimes against a virtual clock.

    Regression suite: the cache used to have no notion of time at all —
    every entry lived forever, so a scan running longer than a zone's
    TTL kept serving dead delegations (and, under policy="all", stale
    leaf answers)."""

    def _clocked(self, **kwargs):
        now = [0.0]
        cache = SelectiveCache(clock=lambda: now[0], **kwargs)
        return cache, now

    def test_delegation_expires_after_ttl(self):
        cache, now = self._clocked(capacity=10)
        entry = delegation("com", "1.1.1.1")
        entry = Delegation(zone=entry.zone, ns_names=entry.ns_names, glue=entry.glue, ttl=60)
        cache.put_delegation(entry)
        now[0] = 59.9
        assert cache.get_delegation(N("com")) is not None
        now[0] = 60.0  # expiry boundary: TTL seconds after insert is dead
        assert cache.get_delegation(N("com")) is None
        assert cache.stats.expired == 1
        assert len(cache) == 0  # dropped lazily on the probe

    def test_expired_cut_falls_back_to_ancestor(self):
        cache, now = self._clocked(capacity=10)
        com = delegation("com", "1.1.1.1")
        cache.put_delegation(com)  # ttl None: never expires
        deep = delegation("example.com", "2.2.2.2")
        deep = Delegation(zone=deep.zone, ns_names=deep.ns_names, glue=deep.glue, ttl=30)
        cache.put_delegation(deep)
        best = cache.best_delegation(N("www.example.com"))
        assert best.zone == N("example.com")
        now[0] = 31.0
        best = cache.best_delegation(N("www.example.com"))
        assert best is not None and best.zone == N("com")
        assert cache.stats.expired == 1
        assert cache.stats.hits == 2  # the ancestor still counts as a hit

    def test_expiry_walk_can_end_in_a_miss(self):
        cache, now = self._clocked(capacity=10)
        entry = delegation("org", "1.1.1.1")
        entry = Delegation(zone=entry.zone, ns_names=entry.ns_names, glue=entry.glue, ttl=10)
        cache.put_delegation(entry)
        now[0] = 11.0
        assert cache.best_delegation(N("a.org")) is None
        assert cache.stats.misses == 1
        assert cache.stats.expired == 1

    def test_answer_lifetime_is_min_record_ttl(self):
        cache, now = self._clocked(capacity=10, policy="all")
        short = ResourceRecord(N("a.com"), RRType.A, DNSClass.IN, 20, A("1.2.3.4"))
        long = ResourceRecord(N("a.com"), RRType.A, DNSClass.IN, 300, A("5.6.7.8"))
        cache.put_answer(N("a.com"), RRType.A, [short, long])
        now[0] = 19.9
        assert cache.get_answer(N("a.com"), RRType.A) is not None
        now[0] = 20.0
        assert cache.get_answer(N("a.com"), RRType.A) is None
        assert cache.stats.expired == 1
        assert cache.stats.answer_misses == 1

    def test_no_clock_means_no_expiry(self):
        cache = SelectiveCache(capacity=10)
        entry = delegation("com", "1.1.1.1")
        entry = Delegation(zone=entry.zone, ns_names=entry.ns_names, glue=entry.glue, ttl=1)
        cache.put_delegation(entry)
        assert cache.get_delegation(N("com")) is not None  # forever

    def test_overwrite_refreshes_lifetime(self):
        cache, now = self._clocked(capacity=10)
        entry = delegation("com", "1.1.1.1")
        cache.put_delegation(
            Delegation(zone=entry.zone, ns_names=entry.ns_names, glue=entry.glue, ttl=10)
        )
        now[0] = 8.0
        cache.put_delegation(
            Delegation(zone=entry.zone, ns_names=entry.ns_names, glue=entry.glue, ttl=10)
        )
        now[0] = 15.0  # past the first deadline, inside the second
        assert cache.get_delegation(N("com")) is not None


class TestExpiryBoundary:
    """Satellite regression suite: the ``clock() == expires_at`` instant.

    The boundary rule must be *uniform*: at exactly the expiry instant
    an entry is dead on the probe path, on the ``best_delegation``
    walk, and on the eviction path — and the drop is always accounted
    as ``expired``, never ``evictions``.  FP-exact: the tests pin the
    exact boundary and its ``math.nextafter`` neighbour."""

    def _clocked(self, **kwargs):
        now = [0.0]
        cache = SelectiveCache(clock=lambda: now[0], **kwargs)
        return cache, now

    def _with_ttl(self, zone: str, ttl: int) -> Delegation:
        entry = delegation(zone, "1.1.1.1")
        return Delegation(zone=entry.zone, ns_names=entry.ns_names,
                          glue=entry.glue, ttl=ttl)

    def test_probe_boundary_is_fp_exact(self):
        import math

        cache, now = self._clocked(capacity=10)
        cache.put_delegation(self._with_ttl("com", 60))
        now[0] = math.nextafter(60.0, 0.0)  # largest float below the boundary
        assert cache.get_delegation(N("com")) is not None
        assert cache.stats.expired == 0
        now[0] = 60.0  # the boundary itself: dead
        assert cache.get_delegation(N("com")) is None
        assert cache.stats.expired == 1

    def test_best_delegation_walk_uses_the_same_boundary(self):
        import math

        cache, now = self._clocked(capacity=10)
        cache.put_delegation(self._with_ttl("example.com", 30))
        now[0] = math.nextafter(30.0, 0.0)
        assert cache.best_delegation(N("www.example.com")) is not None
        now[0] = 30.0
        assert cache.best_delegation(N("www.example.com")) is None
        assert cache.stats.expired == 1
        assert cache.stats.misses == 1

    def test_eviction_of_expired_victim_counts_as_expired(self):
        """Regression: a capacity eviction whose victim had already
        passed its deadline used to count as ``evictions`` — the same
        dead entry was classified differently depending on whether a
        probe or the capacity sweep found it first."""
        cache, now = self._clocked(capacity=1, eviction="lru")
        cache.put_delegation(self._with_ttl("a.com", 10))
        now[0] = 10.0  # victim is dead at exactly its deadline
        cache.put_delegation(self._with_ttl("b.com", 10))
        assert cache.stats.expired == 1
        assert cache.stats.evictions == 0

    def test_eviction_of_live_victim_still_counts_as_eviction(self):
        import math

        cache, now = self._clocked(capacity=1, eviction="lru")
        cache.put_delegation(self._with_ttl("a.com", 10))
        now[0] = math.nextafter(10.0, 0.0)  # victim still (barely) alive
        cache.put_delegation(self._with_ttl("b.com", 10))
        assert cache.stats.evictions == 1
        assert cache.stats.expired == 0

    def test_boundary_identical_across_probe_and_eviction(self):
        """The three lifetime paths agree at the exact boundary: same
        clock reading, same classification."""
        for probe_first in (True, False):
            cache, now = self._clocked(capacity=1, eviction="lru")
            cache.put_delegation(self._with_ttl("x.com", 25))
            now[0] = 25.0
            if probe_first:
                assert cache.get_delegation(N("x.com")) is None
                assert (cache.stats.expired, cache.stats.evictions) == (1, 0)
            else:
                cache.put_delegation(self._with_ttl("y.com", 25))
                assert (cache.stats.expired, cache.stats.evictions) == (1, 0)


class TestServeStale:
    """RFC 8767: expired answers stay servable — bounded, read-only,
    and only through the explicit stale APIs."""

    def _cache(self, stale_ttl=600.0, **kwargs):
        now = [0.0]
        cache = SelectiveCache(
            capacity=32, policy="all", clock=lambda: now[0],
            stale_ttl=stale_ttl, **kwargs
        )
        return cache, now

    def _record(self, name="a.com", ttl=300, ip="1.2.3.4"):
        return ResourceRecord(N(name), RRType.A, DNSClass.IN, ttl, A(ip))

    def test_stale_ttl_requires_clock(self):
        with pytest.raises(ValueError):
            SelectiveCache(stale_ttl=60.0)

    def test_stale_ttl_must_be_positive(self):
        with pytest.raises(ValueError):
            SelectiveCache(stale_ttl=0.0, clock=lambda: 0.0)

    def test_expired_answer_is_a_fresh_miss_but_stale_hit(self):
        cache, now = self._cache()
        record = self._record()
        cache.put_answer(N("a.com"), RRType.A, [record])
        now[0] = 300.0  # boundary: dead on the fresh path...
        assert cache.get_answer(N("a.com"), RRType.A) is None
        # ...but retained, not dropped: age 0.0 through the stale API
        stale = cache.get_stale_answer(N("a.com"), RRType.A)
        assert stale == ([record], 0.0)
        assert cache.stats.stale_hits == 1
        assert cache.stats.expired == 0

    def test_stale_read_never_rejuvenates(self):
        """Serving stale must not make the entry younger: the reported
        age keeps growing across reads."""
        cache, now = self._cache()
        cache.put_answer(N("a.com"), RRType.A, [self._record()])
        now[0] = 400.0
        _, age1 = cache.get_stale_answer(N("a.com"), RRType.A)
        now[0] = 500.0
        _, age2 = cache.get_stale_answer(N("a.com"), RRType.A)
        assert (age1, age2) == (100.0, 200.0)

    def test_stale_window_cap_finalises_the_entry(self):
        cache, now = self._cache(stale_ttl=600.0)
        cache.put_answer(N("a.com"), RRType.A, [self._record()])
        import math

        now[0] = math.nextafter(900.0, 0.0)  # 300 + 600, just inside
        assert cache.get_stale_answer(N("a.com"), RRType.A) is not None
        now[0] = 900.0  # at the cap: same >= boundary rule, finalised
        assert cache.get_stale_answer(N("a.com"), RRType.A) is None
        assert cache.stats.expired == 1
        assert len(cache) == 0

    def test_fresh_entry_is_not_stale(self):
        cache, now = self._cache()
        cache.put_answer(N("a.com"), RRType.A, [self._record()])
        now[0] = 100.0
        assert cache.get_stale_answer(N("a.com"), RRType.A) is None
        assert cache.stats.stale_hits == 0

    def test_delegations_are_exempt_from_serve_stale(self):
        """RFC 8767 staleness applies to answers; the delegation walk
        must keep dropping expired cuts (a stale NS set would steer
        every future query at dead servers)."""
        cache, now = self._cache()
        entry = delegation("com", "1.1.1.1")
        cache.put_delegation(Delegation(zone=entry.zone, ns_names=entry.ns_names,
                                        glue=entry.glue, ttl=60))
        now[0] = 60.0
        assert cache.get_delegation(N("com")) is None
        assert cache.stats.expired == 1
        assert len(cache) == 0

    def test_upstream_refresh_restores_freshness(self):
        cache, now = self._cache()
        cache.put_answer(N("a.com"), RRType.A, [self._record()])
        now[0] = 400.0  # stale
        assert cache.get_answer(N("a.com"), RRType.A) is None
        cache.put_answer(N("a.com"), RRType.A, [self._record(ip="9.9.9.9")])
        fresh = cache.get_answer(N("a.com"), RRType.A)
        assert fresh is not None and fresh[0].rdata.address == "9.9.9.9"
        assert cache.get_stale_answer(N("a.com"), RRType.A) is None


class TestNegativeCache:
    def _cache(self, **kwargs):
        now = [0.0]
        cache = SelectiveCache(capacity=32, policy="all",
                               clock=lambda: now[0], **kwargs)
        return cache, now

    def test_put_and_get_negative(self):
        cache, now = self._cache()
        cache.put_negative(N("gone.com"), RRType.A, "NXDOMAIN", 900)
        assert cache.get_negative(N("gone.com"), RRType.A) == "NXDOMAIN"
        assert cache.stats.answer_hits == 1

    def test_negative_expires_on_boundary(self):
        cache, now = self._cache()
        cache.put_negative(N("gone.com"), RRType.A, "NXDOMAIN", 900)
        now[0] = 900.0
        assert cache.get_negative(N("gone.com"), RRType.A) is None

    def test_negative_stale_window(self):
        cache, now = self._cache(stale_ttl=600.0)
        cache.put_negative(N("gone.com"), RRType.A, "NXDOMAIN", 900)
        now[0] = 1000.0
        assert cache.get_negative(N("gone.com"), RRType.A) is None
        assert cache.get_stale_negative(N("gone.com"), RRType.A) == ("NXDOMAIN", 100.0)

    def test_negative_needs_all_policy(self):
        cache = SelectiveCache(capacity=8, policy="selective")
        cache.put_negative(N("gone.com"), RRType.A, "NXDOMAIN", 900)
        assert cache.get_negative(N("gone.com"), RRType.A) is None
        assert len(cache) == 0

    def test_negative_does_not_collide_with_positive(self):
        cache, now = self._cache()
        record = ResourceRecord(N("a.com"), RRType.A, DNSClass.IN, 300, A("1.2.3.4"))
        cache.put_answer(N("a.com"), RRType.A, [record])
        cache.put_negative(N("a.com"), RRType.A, "NXDOMAIN", 900)
        assert cache.get_answer(N("a.com"), RRType.A) == [record]
        assert cache.get_negative(N("a.com"), RRType.A) == "NXDOMAIN"
        assert len(cache) == 2


class TestHeatAndPrefetchState:
    def _cache(self, **kwargs):
        now = [0.0]
        cache = SelectiveCache(capacity=32, policy="all", track_heat=True,
                               clock=lambda: now[0], **kwargs)
        return cache, now

    def _record(self, ip="1.2.3.4"):
        return ResourceRecord(N("a.com"), RRType.A, DNSClass.IN, 300, A(ip))

    def test_hits_accumulate_and_store_resets(self):
        cache, now = self._cache()
        cache.put_answer(N("a.com"), RRType.A, [self._record()])
        for _ in range(3):
            cache.get_answer(N("a.com"), RRType.A)
        assert cache.answer_heat(N("a.com"), RRType.A) == (300.0, 3)
        cache.put_answer(N("a.com"), RRType.A, [self._record("9.9.9.9")])
        remaining, hits = cache.answer_heat(N("a.com"), RRType.A)
        assert hits == 0  # fresh data starts cold

    def test_remaining_ttl_counts_down(self):
        cache, now = self._cache()
        cache.put_answer(N("a.com"), RRType.A, [self._record()])
        now[0] = 120.0
        remaining, _ = cache.answer_heat(N("a.com"), RRType.A)
        assert remaining == 180.0

    def test_stale_entry_reports_nonpositive_remaining(self):
        """Prefetch gates on ``0 < remaining``: a stale-retained entry
        must never qualify (refreshing it is the failure path's job)."""
        cache, now = self._cache(stale_ttl=600.0)
        cache.put_answer(N("a.com"), RRType.A, [self._record()])
        now[0] = 350.0
        remaining, _ = cache.answer_heat(N("a.com"), RRType.A)
        assert remaining == -50.0

    def test_absent_and_heatless(self):
        cache, now = self._cache()
        assert cache.answer_heat(N("nope.com"), RRType.A) is None
        assert cache.stats.answer_misses == 0  # pure read: no stats


class TestRevalidationHooks:
    def _cache(self, **kwargs):
        now = [0.0]
        cache = SelectiveCache(capacity=64, policy="all",
                               clock=lambda: now[0], **kwargs)
        return cache, now

    def _fill(self, cache):
        record = ResourceRecord(N("x"), RRType.A, DNSClass.IN, 300, A("1.2.3.4"))
        cache.put_delegation(delegation("example.com", "1.1.1.1"))
        cache.put_delegation(delegation("www.example.com", "2.2.2.2"))
        cache.put_delegation(delegation("other.com", "3.3.3.3"))
        cache.put_answer(N("a.example.com"), RRType.A, [record])
        cache.put_answer(N("a.other.com"), RRType.A, [record])
        cache.put_negative(N("gone.example.com"), RRType.A, "NXDOMAIN", 900)

    def test_invalidate_subtree_scopes_to_the_zone(self):
        cache, now = self._cache()
        self._fill(cache)
        dropped = cache.invalidate_subtree(N("example.com"))
        # the cut itself, the deeper cut, the answer, and the negative
        assert dropped == 4
        assert cache.stats.invalidated == 4
        assert cache.get_delegation(N("other.com")) is not None
        assert cache.get_answer(N("a.other.com"), RRType.A) is not None
        assert cache.get_delegation(N("example.com")) is None
        assert cache.get_negative(N("gone.example.com"), RRType.A) is None

    def test_invalidate_subtree_respects_label_boundaries(self):
        """A suffix match on text would wrongly drop ``oo.com`` entries
        for a delta to ``o.com``; the canonical-key tuple match cannot."""
        cache, now = self._cache()
        cache.put_delegation(delegation("oo.com", "1.1.1.1"))
        assert cache.invalidate_subtree(N("o.com")) == 0
        assert cache.get_delegation(N("oo.com")) is not None

    def test_invalidate_subtree_drops_stale_entries_too(self):
        """Revalidation during a blackout must not leave known-changed
        stale data servable: the subtree drop takes the stale copies
        with it, and the stale path cannot resurrect them."""
        cache, now = self._cache(stale_ttl=600.0)
        record = ResourceRecord(N("a.example.com"), RRType.A, DNSClass.IN, 300,
                                A("1.2.3.4"))
        cache.put_answer(N("a.example.com"), RRType.A, [record])
        now[0] = 400.0  # stale but servable
        assert cache.get_stale_answer(N("a.example.com"), RRType.A) is not None
        cache.invalidate_subtree(N("example.com"))
        assert cache.get_stale_answer(N("a.example.com"), RRType.A) is None

    def test_flush_drops_everything(self):
        cache, now = self._cache()
        self._fill(cache)
        count = len(cache)
        assert cache.flush() == count
        assert len(cache) == 0
        assert cache.stats.invalidated == count

    def test_root_subtree_is_a_flush(self):
        cache, now = self._cache()
        self._fill(cache)
        count = len(cache)
        assert cache.invalidate_subtree(Name.root()) == count
        assert len(cache) == 0
