"""Durability tests: checkpoint journal, exact resume, work stealing.

The heart of this file is the crash matrix: real scans run as
subprocesses, get SIGKILLed at chosen points (a worker mid-task, the
parent right after journaling its Nth task), are resumed from the
checkpoint directory, and the resumed output — rows, stderr stats
summary, metrics dump, spans — must be *byte-identical* to an
uninterrupted run of the same configuration.  Around it: journal
round-trip units, config-fingerprint rejection, corruption detection,
and the steal-boundary determinism property (any steal schedule, any
process count → identical bytes).

Baselines are always runs with checkpointing enabled: streaming
telemetry schedules virtual-clock timers, so (exactly like
``--status-interval`` and ``--http-port``) it is part of the scan
configuration the fingerprint pins.
"""

import io as io_module
import json
import os
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.framework import ScanConfig, run_parallel_scan
from repro.framework.checkpoint import (
    JOURNAL_NAME,
    JOURNAL_VERSION,
    SPOOL_DIR,
    CheckpointError,
    CheckpointJournal,
    CheckpointWriter,
    config_fingerprint,
    restore_metrics_dump,
)
from repro.framework.io import names_digest
from repro.framework.stats import ScanStats
from repro.obs import MetricsRegistry

REPO_ROOT = Path(__file__).resolve().parent.parent
NAMES = 60
SHARDS = 4
QUANTUM = 4  # 15 names/shard -> 4 segments/shard -> 16 tasks


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _corpus():
    tlds = ("com", "net", "org")
    return [f"host{i}.zone{i % 7}.{tlds[i % 3]}" for i in range(NAMES)]


@pytest.fixture(scope="module")
def names_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("corpus") / "names.txt"
    path.write_text("\n".join(_corpus()) + "\n")
    return path


def _cli_env(crash=None, delay=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env.pop("REPRO_TEST_CRASH", None)
    env.pop("REPRO_TEST_TASK_DELAY", None)
    if crash is not None:
        env["REPRO_TEST_CRASH"] = crash
    if delay is not None:
        env["REPRO_TEST_TASK_DELAY"] = delay
    return env


def _cli_scan(names_file, workdir, tag, *, processes, checkpoint=None,
              resume=None, crash=None, delay=None, extra=()):
    """One CLI scan as a subprocess; returns (returncode, stderr, paths)."""
    out = workdir / f"{tag}.jsonl"
    prom = workdir / f"{tag}.prom"
    spans = workdir / f"{tag}.spans"
    argv = [
        sys.executable, "-m", "repro.framework.cli", "A",
        "-f", str(names_file), "-o", str(out),
        "--processes", str(processes),
        "--mp-shards", str(SHARDS),
        "--steal-quantum", str(QUANTUM),
        "--no-timestamps",
        "--seed", "7", "--threads", "50",
        "--metrics-out", str(prom),
        "--spans-file", str(spans),
        *extra,
    ]
    if checkpoint is not None:
        argv += ["--checkpoint-dir", str(checkpoint)]
    if resume is not None:
        argv += ["--resume", str(resume)]
    proc = subprocess.run(
        argv, env=_cli_env(crash=crash, delay=delay),
        capture_output=True, text=True, timeout=120, cwd=str(REPO_ROOT),
    )
    return proc, {"rows": out, "prom": prom, "spans": spans}


def _summary_line(stderr: str) -> str:
    """The stats summary is the last JSON-object line on stderr."""
    lines = [l for l in stderr.splitlines() if l.startswith("{")]
    assert lines, f"no summary on stderr: {stderr!r}"
    return lines[-1]


@pytest.fixture(scope="module")
def baseline_for(names_file, tmp_path_factory):
    """Uninterrupted checkpointed runs, one per process count: the
    byte-identity references.  (The metrics dump and summary include the
    ``mp.processes`` topology gauge, so references are per-p.)"""
    cache = {}

    def build(processes):
        if processes not in cache:
            workdir = tmp_path_factory.mktemp(f"baseline-p{processes}")
            proc, paths = _cli_scan(
                names_file, workdir, "base",
                processes=processes, checkpoint=workdir / "ck",
            )
            assert proc.returncode == 0, proc.stderr
            cache[processes] = {
                "rows": paths["rows"].read_bytes(),
                "prom": paths["prom"].read_bytes(),
                "spans": paths["spans"].read_bytes(),
                "summary": _summary_line(proc.stderr),
            }
        return cache[processes]

    return build


def _assert_identical(paths, proc, baseline):
    assert paths["rows"].read_bytes() == baseline["rows"]
    assert paths["prom"].read_bytes() == baseline["prom"]
    assert paths["spans"].read_bytes() == baseline["spans"]
    assert _summary_line(proc.stderr) == baseline["summary"]


# ---------------------------------------------------------------------------
# journal round-trip units
# ---------------------------------------------------------------------------


def _sample_payload():
    stats = ScanStats()
    stats.record("NOERROR", 1.5, queries=2)
    stats.record("TIMEOUT", 9.0, queries=3, retries=2)
    registry = MetricsRegistry(enabled=True)
    registry.counter("engine.lookups").inc(2)
    registry.histogram("engine.latency").observe(0.25)
    registry.histogram("engine.latency").observe(90.0)
    return {
        "stats": stats.to_state(),
        "metrics": registry.dump(),
        "cache": {"hits": 3, "misses": 1},
        "cpu_utilisation": 0.5,
    }


class TestJournalRoundTrip:
    def _write_session(self, directory, *, fsync="always"):
        writer = CheckpointWriter(
            str(directory), fingerprint="fp-1", plan={"tasks": [[0, 0, 0, 2]]},
            fsync=fsync,
        )
        writer.spool_rows((0, 0), ['{"name": "a"}\n'])
        writer.spool_rows((0, 0), ['{"name": "b"}\n'])
        writer.spool_spans((0, 0), ['{"span": "lookup"}\n'])
        writer.note_delta((0, 0), {"shard": 0, "seq": 3, "version": 2})
        writer.task_done((0, 0), _sample_payload())
        writer.finalize(complete=True, counters={"done": 2})
        return writer

    def test_task_record_round_trips(self, tmp_path):
        self._write_session(tmp_path)
        journal = CheckpointJournal.load(str(tmp_path))
        assert journal.fingerprint == "fp-1"
        assert set(journal.tasks) == {(0, 0)}
        record = journal.tasks[(0, 0)]
        assert record["rows"] == 2
        assert record["spans"] == 1
        assert record["delta"]["seq"] == 3
        assert journal.rows_for((0, 0)) == ['{"name": "a"}\n', '{"name": "b"}\n']
        assert journal.spans_for((0, 0)) == ['{"span": "lookup"}\n']

    @pytest.mark.parametrize("fsync", ["always", "interval", "never"])
    def test_all_fsync_policies_produce_loadable_journals(self, tmp_path, fsync):
        directory = tmp_path / fsync
        self._write_session(directory, fsync=fsync)
        journal = CheckpointJournal.load(str(directory))
        assert set(journal.tasks) == {(0, 0)}

    def test_restored_payload_matches_live_format_exactly(self, tmp_path):
        """The JSON round-trip must not corrupt the mergeable payload —
        histogram buckets especially, whose int keys JSON stringifies."""
        self._write_session(tmp_path)
        journal = CheckpointJournal.load(str(tmp_path))
        payload = journal.tasks[(0, 0)]["payload"]
        original = _sample_payload()
        assert payload["stats"] == original["stats"]
        assert restore_metrics_dump(original["metrics"]) == payload["metrics"]
        merged = MetricsRegistry(enabled=True)
        merged.merge_dump(payload["metrics"])
        hist = merged.snapshot()["engine.latency"]
        assert hist["count"] == 2
        assert hist["max"] == pytest.approx(90.0)

    def test_fresh_writer_refuses_existing_journal(self, tmp_path):
        self._write_session(tmp_path)
        with pytest.raises(CheckpointError, match="already holds a journal"):
            CheckpointWriter(str(tmp_path), fingerprint="fp-2", plan={})

    def test_bad_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="fsync policy"):
            CheckpointWriter(str(tmp_path), fingerprint="f", plan={}, fsync="sometimes")

    def test_rerun_truncates_stale_spool(self, tmp_path):
        """A resumed session re-running a task must overwrite, not
        append to, the crashed attempt's partial spool."""
        writer = CheckpointWriter(str(tmp_path), fingerprint="f", plan={})
        writer.spool_rows((0, 0), ["stale-line-1\n", "stale-line-2\n"])
        writer.finalize(complete=False)  # crash before task_done
        resumed = CheckpointWriter(
            str(tmp_path), fingerprint="f", plan={}, resume=True
        )
        resumed.spool_rows((0, 0), ["fresh\n"])
        resumed.task_done((0, 0), _sample_payload())
        resumed.finalize(complete=True)
        journal = CheckpointJournal.load(str(tmp_path))
        assert journal.rows_for((0, 0)) == ["fresh\n"]


class TestJournalRejection:
    def _journal_path(self, directory):
        return directory / JOURNAL_NAME

    def _valid_dir(self, tmp_path):
        writer = CheckpointWriter(
            str(tmp_path), fingerprint="fp-good", plan={"tasks": [[0, 0, 0, 1]]}
        )
        writer.spool_rows((0, 0), ['{"name": "x"}\n'])
        writer.task_done((0, 0), _sample_payload())
        writer.finalize(complete=False)
        return tmp_path

    def test_missing_journal(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint journal"):
            CheckpointJournal.load(str(tmp_path / "nowhere"))

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        journal = CheckpointJournal.load(str(self._valid_dir(tmp_path)))
        with pytest.raises(CheckpointError, match="different scan configuration"):
            journal.validate(fingerprint="fp-other", plan=journal.plan)

    def test_plan_mismatch_rejected(self, tmp_path):
        journal = CheckpointJournal.load(str(self._valid_dir(tmp_path)))
        with pytest.raises(CheckpointError, match="plan does not match"):
            journal.validate(
                fingerprint="fp-good", plan={"tasks": [[0, 0, 0, 99]]}
            )

    def test_torn_final_line_is_tolerated(self, tmp_path):
        """A crash mid-append tears exactly the last line; resume must
        treat the journal as valid minus that record."""
        self._valid_dir(tmp_path)
        path = self._journal_path(tmp_path)
        with open(path, "a") as handle:
            handle.write('{"kind": "task", "key": [9, 9], "truncat')
        journal = CheckpointJournal.load(str(tmp_path))
        assert set(journal.tasks) == {(0, 0)}  # torn record discarded

    def test_mid_file_corruption_rejected(self, tmp_path):
        self._valid_dir(tmp_path)
        path = self._journal_path(tmp_path)
        lines = path.read_text().splitlines(keepends=True)
        lines.insert(1, "NOT JSON AT ALL\n")
        path.write_text("".join(lines))
        with pytest.raises(CheckpointError, match="corrupt journal record"):
            CheckpointJournal.load(str(tmp_path))

    def test_version_mismatch_rejected(self, tmp_path):
        self._valid_dir(tmp_path)
        path = self._journal_path(tmp_path)
        lines = path.read_text().splitlines(keepends=True)
        header = json.loads(lines[0])
        header["version"] = JOURNAL_VERSION + 1
        lines[0] = json.dumps(header) + "\n"
        path.write_text("".join(lines))
        with pytest.raises(CheckpointError, match="journal version"):
            CheckpointJournal.load(str(tmp_path))

    def test_headerless_journal_rejected(self, tmp_path):
        (tmp_path / SPOOL_DIR).mkdir()
        self._journal_path(tmp_path).write_text('{"kind": "task"}\n')
        with pytest.raises(CheckpointError, match="header"):
            CheckpointJournal.load(str(tmp_path))

    def test_truncated_spool_rejected(self, tmp_path):
        self._valid_dir(tmp_path)
        spool = tmp_path / SPOOL_DIR / "shard-0.seg-0.rows"
        spool.write_bytes(spool.read_bytes()[:3])
        with pytest.raises(CheckpointError, match="truncated checkpoint spool"):
            CheckpointJournal.load(str(tmp_path))


class TestConfigFingerprint:
    def _fingerprint(self, *, seed=7, shards=4, quantum=4, digest="d", **extra):
        defaults = dict(
            wire_mode="always", wire_sample=16, collect_metrics=False,
            fault_plan=None, chaos_seed=None, add_timestamp=False,
            collect_spans=False,
        )
        defaults.update(extra)
        return config_fingerprint(
            config=ScanConfig(module="A", seed=seed),
            shards=shards, steal_quantum=quantum, names_digest=digest,
            **defaults,
        )

    def test_sensitive_to_everything_that_shapes_bytes(self):
        base = self._fingerprint()
        assert base != self._fingerprint(seed=8)
        assert base != self._fingerprint(shards=5)
        assert base != self._fingerprint(quantum=None)
        assert base != self._fingerprint(digest="other")
        assert base != self._fingerprint(fault_plan="mild")
        assert base != self._fingerprint(add_timestamp=True)

    def test_insensitive_to_wall_clock_knobs(self):
        """status_interval only shapes stderr; it must not block resume."""
        quiet = ScanConfig(module="A", seed=7, status_interval=None)
        chatty = ScanConfig(module="A", seed=7, status_interval=0.5)
        kwargs = dict(
            shards=4, steal_quantum=4, wire_mode="always", wire_sample=16,
            collect_metrics=False, fault_plan=None, chaos_seed=None,
            add_timestamp=False, collect_spans=False, names_digest="d",
        )
        assert config_fingerprint(config=quiet, **kwargs) == config_fingerprint(
            config=chatty, **kwargs
        )

    def test_names_digest_is_order_sensitive(self):
        assert names_digest(["a", "b"]) != names_digest(["b", "a"])
        assert names_digest(["ab"]) != names_digest(["a", "b"])
        assert names_digest(["a", "b"]) == names_digest(iter(["a", "b"]))


# ---------------------------------------------------------------------------
# steal-boundary determinism (in-process)
# ---------------------------------------------------------------------------


def _run_in_process(corpus, *, processes, quantum=None, delay=None,
                    checkpoint_dir=None, resume=False, monkeypatch=None):
    if delay is not None:
        monkeypatch.setenv("REPRO_TEST_TASK_DELAY", delay)
    elif monkeypatch is not None:
        monkeypatch.delenv("REPRO_TEST_TASK_DELAY", raising=False)
    out = io_module.StringIO()
    report = run_parallel_scan(
        corpus,
        ScanConfig(module="A", mode="iterative", threads=50, seed=11),
        processes=processes,
        out=out,
        shards=SHARDS,
        add_timestamp=False,
        steal_quantum=quantum,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
    )
    return out.getvalue(), report


class TestStealDeterminism:
    @pytest.fixture(scope="class")
    def corpus(self):
        return _corpus()

    def test_any_steal_schedule_yields_identical_bytes(self, corpus, monkeypatch):
        """The property the whole design rests on: bytes are a function
        of (seed, shards, quantum) — never of which worker ran what.
        Different worker delays force different steal schedules."""
        reference, _ = _run_in_process(
            corpus, processes=1, quantum=QUANTUM, monkeypatch=monkeypatch
        )
        stolen = 0
        for schedule in (None, "0:0.3", "1:0.2", "2:0.25"):
            text, report = _run_in_process(
                corpus, processes=3, quantum=QUANTUM,
                delay=schedule, monkeypatch=monkeypatch,
            )
            assert text == reference, f"schedule {schedule} changed bytes"
            stolen += report.steals
        assert stolen >= 1  # at least one schedule actually stole

    def test_forced_steal_is_observable(self, corpus, monkeypatch):
        """Slowing worker 0 to a crawl guarantees the other workers
        drain its shards: steals must be reported, with provenance."""
        text, report = _run_in_process(
            corpus, processes=3, quantum=QUANTUM,
            delay="0:0.5", monkeypatch=monkeypatch,
        )
        assert report.steals >= 1
        assert report.tasks == SHARDS * 4
        for event in report.steal_events:
            assert event["to"] != event["from"]
            assert event["stop"] > event["start"]

    def test_quantum_covering_shard_matches_legacy_decomposition(self, corpus, monkeypatch):
        """steal_quantum >= shard size degenerates to whole-shard tasks,
        which must reproduce the historical (no-quantum) bytes exactly —
        the legacy per-shard RNG stream contract."""
        legacy, legacy_report = _run_in_process(
            corpus, processes=2, monkeypatch=monkeypatch
        )
        huge, huge_report = _run_in_process(
            corpus, processes=2, quantum=10_000, monkeypatch=monkeypatch
        )
        assert huge == legacy
        assert legacy_report.tasks == SHARDS
        assert huge_report.tasks == SHARDS

    def test_worker_death_between_tasks_self_heals(self, corpus, monkeypatch):
        """A worker SIGKILLed between tasks is not fatal: survivors
        steal its queue and the scan completes with identical bytes."""
        reference, _ = _run_in_process(
            corpus, processes=2, quantum=QUANTUM, monkeypatch=monkeypatch
        )
        monkeypatch.setenv("REPRO_TEST_CRASH", "worker:0:after:1")
        out = io_module.StringIO()
        report = run_parallel_scan(
            _corpus(),
            ScanConfig(module="A", mode="iterative", threads=50, seed=11),
            processes=2, out=out, shards=SHARDS,
            add_timestamp=False, steal_quantum=QUANTUM,
        )
        assert out.getvalue() == reference
        assert report.stats.total == NAMES


# ---------------------------------------------------------------------------
# in-process resume round trip
# ---------------------------------------------------------------------------


class TestResumeInProcess:
    def test_resume_of_complete_journal_replays_everything(self, tmp_path, monkeypatch):
        corpus = _corpus()
        first, first_report = _run_in_process(
            corpus, processes=2, quantum=QUANTUM,
            checkpoint_dir=str(tmp_path), monkeypatch=monkeypatch,
        )
        second, second_report = _run_in_process(
            corpus, processes=2, quantum=QUANTUM,
            checkpoint_dir=str(tmp_path), resume=True, monkeypatch=monkeypatch,
        )
        assert second == first
        assert first_report.resumed_tasks == 0
        assert second_report.resumed_tasks == second_report.tasks == SHARDS * 4
        assert second_report.stats.to_json() == first_report.stats.to_json()

    def test_resume_against_wrong_corpus_is_rejected(self, tmp_path, monkeypatch):
        corpus = _corpus()
        _run_in_process(
            corpus, processes=1, quantum=QUANTUM,
            checkpoint_dir=str(tmp_path), monkeypatch=monkeypatch,
        )
        with pytest.raises(CheckpointError, match="different scan configuration"):
            _run_in_process(
                corpus[:-1] + ["sneaky.extra.com"], processes=1, quantum=QUANTUM,
                checkpoint_dir=str(tmp_path), resume=True, monkeypatch=monkeypatch,
            )

    def test_resume_without_journal_is_rejected(self, tmp_path, monkeypatch):
        with pytest.raises(CheckpointError, match="no checkpoint journal"):
            _run_in_process(
                _corpus(), processes=1, quantum=QUANTUM,
                checkpoint_dir=str(tmp_path), resume=True, monkeypatch=monkeypatch,
            )


# ---------------------------------------------------------------------------
# the crash matrix (subprocess SIGKILL + resume, byte-identity)
# ---------------------------------------------------------------------------


@pytest.mark.crash
class TestCrashMatrix:
    """SIGKILL at every interesting point; resume; demand exact bytes."""

    @pytest.mark.parametrize("processes", [1, 4])
    @pytest.mark.parametrize("kill_after", [1, 3, 5])
    def test_parent_killed_after_kth_checkpoint(
        self, names_file, tmp_path, baseline_for, processes, kill_after
    ):
        baseline = baseline_for(processes)
        ck = tmp_path / "ck"
        proc, _ = _cli_scan(
            names_file, tmp_path, "int", processes=processes,
            checkpoint=ck, crash=f"parent:after:{kill_after}",
        )
        assert proc.returncode == -9  # SIGKILL, no cleanup ran
        journal = CheckpointJournal.load(str(ck))
        assert len(journal.tasks) >= kill_after
        resumed, paths = _cli_scan(
            names_file, tmp_path, "res", processes=processes, resume=ck
        )
        assert resumed.returncode == 0, resumed.stderr
        _assert_identical(paths, resumed, baseline)

    @pytest.mark.parametrize("processes", [1, 4])
    @pytest.mark.parametrize("kill_during", [1, 2])
    def test_worker_killed_mid_task(
        self, names_file, tmp_path, baseline_for, processes, kill_during
    ):
        """SIGKILL a worker inside a task (before its delta reaches the
        pipe).  The session fails fast with a resume hint; the journal
        holds every task completed so far; resume is exact."""
        baseline = baseline_for(processes)
        ck = tmp_path / "ck"
        proc, _ = _cli_scan(
            names_file, tmp_path, "int", processes=processes,
            checkpoint=ck, crash=f"worker:0:during:{kill_during}",
        )
        assert proc.returncode != 0
        assert "resume to continue" in proc.stderr
        resumed, paths = _cli_scan(
            names_file, tmp_path, "res", processes=processes, resume=ck
        )
        assert resumed.returncode == 0, resumed.stderr
        _assert_identical(paths, resumed, baseline)

    def test_double_crash_chain(self, names_file, tmp_path, baseline_for):
        """Parent killed mid-scan; then the *resume session's parent* is
        killed too; the second resume still lands on exact bytes.

        Both kills use ``parent:after:N`` so they fire deterministically:
        a worker-kill first would let the surviving worker steal and
        drain nearly every task, leaving the resume session too short
        for its own kill to trigger."""
        baseline = baseline_for(2)
        ck = tmp_path / "ck"
        first, _ = _cli_scan(
            names_file, tmp_path, "int1", processes=2,
            checkpoint=ck, crash="parent:after:3",
        )
        assert first.returncode == -9
        assert len(CheckpointJournal.load(ck).tasks) >= 3
        second, _ = _cli_scan(
            names_file, tmp_path, "int2", processes=2,
            resume=ck, crash="parent:after:3",
        )
        assert second.returncode == -9
        final, paths = _cli_scan(
            names_file, tmp_path, "res", processes=2, resume=ck
        )
        assert final.returncode == 0, final.stderr
        _assert_identical(paths, final, baseline)

    def test_crash_after_forced_steal_resumes_exactly(self, names_file, tmp_path, baseline_for):
        baseline = baseline_for(2)
        """Steal boundaries are checkpoints: a scan that stole work and
        then lost its parent resumes to the same bytes."""
        ck = tmp_path / "ck"
        proc, _ = _cli_scan(
            names_file, tmp_path, "int", processes=2, checkpoint=ck,
            crash="parent:after:6", delay="0:0.15",
        )
        assert proc.returncode == -9
        resumed, paths = _cli_scan(
            names_file, tmp_path, "res", processes=2, resume=ck
        )
        assert resumed.returncode == 0, resumed.stderr
        _assert_identical(paths, resumed, baseline)

    def test_resume_under_different_process_count(
        self, names_file, tmp_path, baseline_for
    ):
        """The process count is a wall-clock knob, not scan config: a
        4-process scan may resume with 1 process.  Rows and spans are
        byte-identical; the metrics dump and summary match except for
        the ``mp.processes`` topology gauge, which honestly reports the
        resume session's own process count."""
        baseline = baseline_for(4)
        ck = tmp_path / "ck"
        proc, _ = _cli_scan(
            names_file, tmp_path, "int", processes=4,
            checkpoint=ck, crash="parent:after:3",
        )
        assert proc.returncode == -9
        resumed, paths = _cli_scan(
            names_file, tmp_path, "res", processes=1, resume=ck
        )
        assert resumed.returncode == 0, resumed.stderr
        assert paths["rows"].read_bytes() == baseline["rows"]
        assert paths["spans"].read_bytes() == baseline["spans"]

        def strip_mp_processes(prom_bytes):
            return [
                line for line in prom_bytes.splitlines()
                if b"mp_processes" not in line
            ]

        assert strip_mp_processes(paths["prom"].read_bytes()) == (
            strip_mp_processes(baseline["prom"])
        )
        resumed_summary = json.loads(_summary_line(resumed.stderr))
        base_summary = json.loads(baseline["summary"])
        assert resumed_summary["mp"]["processes"] == 1
        assert base_summary["mp"]["processes"] == 4
        resumed_summary["mp"].pop("processes")
        base_summary["mp"].pop("processes")
        assert resumed_summary == base_summary

    def test_corrupted_journal_fails_resume_cleanly(self, names_file, tmp_path):
        ck = tmp_path / "ck"
        proc, _ = _cli_scan(
            names_file, tmp_path, "int", processes=2,
            checkpoint=ck, crash="parent:after:3",
        )
        assert proc.returncode == -9
        journal = ck / JOURNAL_NAME
        lines = journal.read_text().splitlines(keepends=True)
        lines[1] = "garbage not json\n"
        journal.write_text("".join(lines))
        resumed, _ = _cli_scan(
            names_file, tmp_path, "res", processes=2, resume=ck
        )
        assert resumed.returncode != 0
        assert "corrupt journal record" in resumed.stderr
