"""Additional CLI coverage: flags, modes, and module wiring."""

import json

import pytest

from repro.framework.cli import build_parser, main
from repro.workloads import CorpusConfig, DomainCorpus


@pytest.fixture(scope="module")
def names_file(tmp_path_factory):
    corpus = DomainCorpus(CorpusConfig(seed=3))
    path = tmp_path_factory.mktemp("cli") / "names.txt"
    path.write_text("\n".join(corpus.fqdns(25)))
    return str(path)


def run_cli(args, tmp_path):
    out = tmp_path / "out.jsonl"
    code = main(args + ["-o", str(out), "--quiet"])
    assert code == 0
    return [json.loads(line) for line in out.read_text().splitlines()]


class TestFlags:
    def test_defaults(self):
        args = build_parser().parse_args(["A"])
        assert args.mode == "iterative"
        assert args.threads == 1000
        assert args.cache_size == 600_000

    def test_all_flags_parse(self):
        args = build_parser().parse_args([
            "MXLOOKUP", "--mode", "external", "--name-servers", "1.1.1.1,8.8.8.8",
            "--threads", "77", "--source-prefix", "29", "--cache-size", "1234",
            "--retries", "5", "--timeout", "1.5", "--trace", "--seed", "9",
            "--cores", "8",
        ])
        assert args.name_servers == "1.1.1.1,8.8.8.8"
        assert args.source_prefix == 29
        assert args.retries == 5


class TestModes:
    def test_iterative_mode(self, names_file, tmp_path):
        rows = run_cli(["A", "-f", names_file, "--threads", "10", "--seed", "5"], tmp_path)
        assert len(rows) == 25
        assert {row["status"] for row in rows} <= {
            "NOERROR", "NXDOMAIN", "SERVFAIL", "TIMEOUT", "ITERATIVE_TIMEOUT", "ERROR",
        }

    def test_cloudflare_mode(self, names_file, tmp_path):
        rows = run_cli(
            ["A", "-f", names_file, "--mode", "cloudflare", "--threads", "10", "--seed", "5"],
            tmp_path,
        )
        ok = [row for row in rows if row["status"] == "NOERROR"]
        assert ok and all(row["data"]["resolver"] == "1.1.1.1:53" for row in ok)

    def test_mxlookup_module(self, names_file, tmp_path):
        rows = run_cli(
            ["MXLOOKUP", "-f", names_file, "--threads", "10", "--seed", "5"], tmp_path
        )
        assert all("exchanges" in row["data"] for row in rows if row["status"] == "NOERROR")

    def test_caalookup_module(self, names_file, tmp_path):
        rows = run_cli(
            ["CAALOOKUP", "-f", names_file, "--threads", "10", "--seed", "5"], tmp_path
        )
        assert all("records" in row["data"] for row in rows if row["status"] == "NOERROR")

    def test_dmarc_module(self, names_file, tmp_path):
        rows = run_cli(["DMARC", "-f", names_file, "--threads", "10", "--seed", "5"], tmp_path)
        assert len(rows) == 25

    def test_rows_never_contain_private_keys(self, names_file, tmp_path):
        rows = run_cli(["A", "-f", names_file, "--threads", "5", "--seed", "5"], tmp_path)
        for row in rows:
            assert not any(key.startswith("_") for key in row)


class TestMetadataFile:
    def test_metadata_written(self, names_file, tmp_path):
        import json as _json

        meta = tmp_path / "meta.json"
        out = tmp_path / "o.jsonl"
        code = main([
            "A", "-f", names_file, "-o", str(out), "--threads", "5",
            "--seed", "5", "--quiet", "--metadata-file", str(meta),
        ])
        assert code == 0
        data = _json.loads(meta.read_text())
        assert data["total"] == 25
        assert "statuses" in data
