"""Lazy-view, codec-stats and decode-avoidance regression tests.

The flat-scan rewrite emits :class:`LazyResourceRecord` views whose
rdata stays raw packet bytes until first touched.  These tests pin the
invariants the rest of the stack relies on: hydration reads from a
private immutable buffer (copy-on-decode, so a reused receive buffer
can never corrupt a view), the codec stats count real work, and the
transport/simulator avoid full decodes wherever a cheap transaction-id
peek or an abandoned future makes them pointless.
"""

import copy
import pickle
import socket
import threading

import pytest

from repro.dnslib import (
    CODEC_STATS,
    DNSClass,
    LazyResourceRecord,
    Message,
    Name,
    Question,
    ResourceRecord,
    RRType,
    WireError,
    add_edns,
    clear_codec_caches,
    decode_many,
    peek_header,
    peek_txid,
)
from repro.dnslib.rdata.address import A, AAAA
from repro.dnslib.rdata.names import NS
from repro.dnslib.rdata.text import TXT
from repro.net import LatencyModel, ServerReply, SimNetwork, Simulator, UDPTransport


def _rr(name, rrtype, rdata, ttl=300):
    return ResourceRecord(Name.from_text(name), rrtype, DNSClass.IN, ttl, rdata)


def _referral_wire(txid=0x4242):
    query = Message.make_query("www.domain-7.com", RRType.A, txid=txid)
    referral = query.make_response()
    for k in (1, 2):
        referral.authorities.append(
            _rr("domain-7.com", RRType.NS, NS(Name.from_text(f"ns{k}.host.example")), 172_800)
        )
        referral.additionals.append(
            _rr(f"ns{k}.host.example", RRType.A, A(f"10.7.0.{k}"), 172_800)
        )
    referral.answers.append(
        _rr("www.domain-7.com", RRType.TXT, TXT((b"hello", b"world")))
    )
    return referral, referral.to_wire()


# -- lazy hydration ----------------------------------------------------------


def test_lazy_records_hydrate_on_demand():
    clear_codec_caches()
    _, wire = _referral_wire()
    before = dict(CODEC_STATS)
    decoded = Message.from_wire(wire)
    assert CODEC_STATS["decode_calls"] == before["decode_calls"] + 1
    lazy = [r for r in decoded.records() if isinstance(r, LazyResourceRecord)]
    # the char-string TXT answer stays a lazy view; A glue hydrates
    # eagerly at scan time through the shared address-instance cache
    assert len(lazy) >= 1
    assert all(not isinstance(r, LazyResourceRecord)
               for r in decoded.additionals if r.rrtype == RRType.A)
    assert CODEC_STATS["lazy_records"] >= before["lazy_records"] + len(lazy)
    assert CODEC_STATS["lazy_hydrations"] == before["lazy_hydrations"]
    values = [record.rdata for record in lazy]
    assert CODEC_STATS["lazy_hydrations"] == before["lazy_hydrations"] + len(lazy)
    # a second access returns the cached value without a second hydration
    assert [record.rdata for record in lazy] == values
    assert CODEC_STATS["lazy_hydrations"] == before["lazy_hydrations"] + len(lazy)


def test_hydrated_values_match_eager_construction():
    clear_codec_caches()
    referral, wire = _referral_wire()
    decoded = Message.from_wire(wire)
    assert decoded == referral
    glue = [r for r in decoded.additionals if r.rrtype == RRType.A]
    assert [r.rdata for r in glue] == [A("10.7.0.1"), A("10.7.0.2")]
    txt = decoded.answers[0]
    assert txt.rdata == TXT((b"hello", b"world"))


def test_bytearray_input_is_copied_before_lazy_views():
    """Scribbling over the caller's buffer after decode must not change
    what an unhydrated record later hydrates to."""
    clear_codec_caches()
    _, wire = _referral_wire()
    buffer = bytearray(wire)
    decoded = Message.from_wire(buffer)
    buffer[:] = b"\xff" * len(buffer)
    glue = [r for r in decoded.additionals if r.rrtype == RRType.A]
    assert [r.rdata for r in glue] == [A("10.7.0.1"), A("10.7.0.2")]
    assert decoded.answers[0].rdata == TXT((b"hello", b"world"))


def test_lazy_record_pickles_and_deepcopies_as_plain_record():
    clear_codec_caches()
    _, wire = _referral_wire()
    record = Message.from_wire(wire).answers[0]
    assert isinstance(record, LazyResourceRecord)
    clone = pickle.loads(pickle.dumps(record))
    assert clone == record
    assert clone.rdata == TXT((b"hello", b"world"))
    duplicate = copy.deepcopy(record)
    assert duplicate == record


# -- batch decode and peeks --------------------------------------------------


def test_decode_many_matches_individual_decodes():
    clear_codec_caches()
    wires = [_referral_wire(txid)[1] for txid in (1, 2, 3, 4)]
    batch = decode_many(wires)
    assert batch == [Message.from_wire(w) for w in wires]
    assert [m.id for m in batch] == [1, 2, 3, 4]


def test_decode_many_raises_on_first_bad_buffer():
    good = _referral_wire()[1]
    with pytest.raises(WireError):
        decode_many([good, good[:9]])


def test_peeks_match_full_decode():
    referral, wire = _referral_wire(txid=0x0BAD)
    assert peek_txid(wire) == 0x0BAD
    txid, _flags, qd, an, ns, ar = peek_header(wire)
    assert (txid, qd, an, ns, ar) == (0x0BAD, 1, 1, 2, 2)
    with pytest.raises(WireError):
        peek_txid(b"\x00")
    with pytest.raises(WireError):
        peek_header(wire[:11])


# -- decode avoidance in the transport and the simulator ---------------------


def test_wrong_txid_discarded_without_full_decode():
    """The live transport peeks the transaction id: a spoofed-id packet
    costs zero decodes, and the whole exchange costs exactly one."""
    query = Message.make_query("peek.test", RRType.A, txid=0x0A0B)
    wrong = query.make_response()
    wrong.id = 0x0A0C
    right = query.make_response(authoritative=True)
    wrong_wire = wrong.to_wire()
    right_wire = right.to_wire()

    responder = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    responder.bind(("127.0.0.1", 0))

    def serve():
        _, client = responder.recvfrom(4096)
        responder.sendto(wrong_wire, client)
        responder.sendto(right_wire, client)

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    before = CODEC_STATS["decode_calls"]
    with UDPTransport() as transport:
        response = transport.query(query, responder.getsockname(), timeout=5.0)
    thread.join(timeout=5.0)
    responder.close()
    assert response is not None
    assert response.id == 0x0A0B
    assert response.flags.authoritative
    # one full decode for the matching reply; the spoofed packet was
    # rejected on the two peeked id bytes alone
    assert CODEC_STATS["decode_calls"] == before + 1


class _SlowServer:
    def handle_query(self, query, client_ip, now, protocol):
        response = query.make_response(authoritative=True)
        response.answers.append(_rr(query.question.name.to_text(), RRType.A, A("192.0.2.1")))
        return ServerReply(response)


def _run_wire_queries(count, latency_median, timeout):
    sim = Simulator()
    network = SimNetwork(sim, seed=1, wire_mode="always")
    network.register_server(
        "10.0.0.1", _SlowServer(), latency=LatencyModel(median=latency_median, sigma=0.0)
    )
    results = []

    def routine(i):
        message = Message.make_query(f"host{i}.example.com", RRType.A, txid=i + 1)
        result = yield network.query_udp("198.18.0.1", "10.0.0.1", message, timeout)
        results.append(result)

    sim.run_all(routine(i) for i in range(count))
    return results


def test_abandoned_future_skips_response_decode():
    """When the client times out before the reply lands, the simulator
    must not decode a packet nobody will read: the exchange costs one
    decode (the server parsing the query), not two."""
    before = CODEC_STATS["decode_calls"]
    results = _run_wire_queries(1, latency_median=1.0, timeout=0.1)
    assert results == [None]
    assert CODEC_STATS["decode_calls"] == before + 1


def test_wire_mode_costs_two_decodes_per_exchange():
    """The per-lookup decode budget in wire mode: the server parses the
    query and the client parses the reply — nothing else."""
    before = CODEC_STATS["decode_calls"]
    results = _run_wire_queries(5, latency_median=0.01, timeout=3.0)
    assert all(r is not None for r in results)
    assert CODEC_STATS["decode_calls"] == before + 10
