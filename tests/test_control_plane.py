"""Tests for the live scan control plane (repro.framework.telemetry +
repro.obs.server): the versioned delta protocol, the parent-side fleet
fold, the single-process view, ETA estimation, and the HTTP endpoints.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.ecosystem import EcosystemParams, build_internet
from repro.framework import (
    DELTA_VERSION,
    FleetView,
    ScanConfig,
    ScanRunner,
    ScanView,
    TelemetryDelta,
)
from repro.obs import MetricsRegistry, estimate_eta, parse_prometheus
from repro.obs.server import DASHBOARD_HTML, TelemetryServer
from repro.workloads import CorpusConfig, DomainCorpus


# ---------------------------------------------------------------------------
# TelemetryDelta: the versioned wire message
# ---------------------------------------------------------------------------


class TestTelemetryDelta:
    def test_payload_round_trip(self):
        delta = TelemetryDelta(
            shard=3, seq=7, done=120, successes=110, timeouts=4, retries=9,
            queries_sent=500, in_flight=12, virtual_now=8.25, cursor=118,
            target=400, complete=False, stats={"total": 120},
        )
        clone = TelemetryDelta.from_payload(delta.to_payload())
        assert clone == delta

    def test_unknown_version_rejected(self):
        payload = TelemetryDelta(shard=0, seq=1).to_payload()
        payload["version"] = DELTA_VERSION + 1
        with pytest.raises(ValueError, match="version"):
            TelemetryDelta.from_payload(payload)

    def test_fleet_view_rejects_unknown_version(self):
        delta = TelemetryDelta(shard=0, seq=1)
        delta.version = DELTA_VERSION + 1
        with pytest.raises(ValueError, match="version"):
            FleetView().update(delta)

    def test_v2_scheduling_fields_round_trip(self):
        """v2 deltas are per (shard, segment) task and carry the
        ownership/steal/resume annotations end to end."""
        delta = TelemetryDelta(
            shard=2, segment=1, segments=4, seq=3, done=40, target=60,
            owner=2, worker=0, stolen_from=1, resumed=True, complete=True,
        )
        clone = TelemetryDelta.from_payload(delta.to_payload())
        assert clone == delta
        assert clone.key == (2, 1)
        assert (clone.owner, clone.worker, clone.stolen_from, clone.resumed) == (
            2, 0, 1, True,
        )


# ---------------------------------------------------------------------------
# FleetView: latest-wins folding and fleet aggregation
# ---------------------------------------------------------------------------


def _delta(shard, seq, done, complete=False, metrics=None):
    return TelemetryDelta(
        shard=shard, seq=seq, done=done, successes=done, queries_sent=3 * done,
        in_flight=5, virtual_now=float(seq), target=100, complete=complete,
        metrics=metrics,
    )


class TestFleetView:
    def test_latest_delta_wins_per_shard(self):
        fleet = FleetView(shards=2)
        fleet.update(_delta(0, seq=1, done=10))
        fleet.update(_delta(0, seq=3, done=30))
        fleet.update(_delta(0, seq=2, done=20))  # stale: arrived late
        assert fleet.fleet_counters()["done"] == 30

    def test_counters_sum_across_shards(self):
        fleet = FleetView(shards=3, target=300)
        for shard in range(3):
            fleet.update(_delta(shard, seq=1, done=10 * (shard + 1)))
        counters = fleet.fleet_counters()
        assert counters["done"] == 60
        assert counters["in_flight"] == 15
        assert counters["shards_complete"] == 0

    def test_snapshot_shape_and_eta(self):
        clock_value = [0.0]
        fleet = FleetView(
            run_info={"module": "A"}, shards=2, target=100,
            clock=lambda: clock_value[0],
        )
        clock_value[0] = 2.0  # 2s elapsed
        fleet.update(_delta(0, seq=4, done=20))
        fleet.update(_delta(1, seq=4, done=30, complete=True))
        snapshot = fleet.status_snapshot()
        assert snapshot["version"] == DELTA_VERSION
        assert snapshot["fleet"]["done"] == 50
        assert snapshot["fleet"]["rate_per_s"] == 25.0
        # 50 remaining at 25/s
        assert snapshot["fleet"]["eta_s"] == 2.0
        assert snapshot["fleet"]["shards_reporting"] == 2
        assert snapshot["fleet"]["shards_complete"] == 1
        assert [row["shard"] for row in snapshot["shards"]] == [0, 1]
        assert json.dumps(snapshot)  # JSON-serialisable end to end

    def test_merged_registry_relabels_scoped_metrics(self):
        def dump_for(shard):
            registry = MetricsRegistry(enabled=True)
            registry.scope("engine").counter("lookups").inc(10)
            registry.scope("faults").counter("injected").inc(shard + 1)
            return registry.dump()

        fleet = FleetView(shards=2)
        for shard in range(2):
            fleet.update(_delta(shard, seq=1, done=10, metrics=dump_for(shard)))
        snap = fleet.merged_registry().snapshot()
        assert snap["engine.lookups"] == 20
        assert snap["faults.shard0.injected"] == 1
        assert snap["faults.shard1.injected"] == 2

    def test_finish_marks_complete_and_clears_eta(self):
        fleet = FleetView(shards=1, target=100)
        fleet.update(_delta(0, seq=1, done=100, complete=True))
        fleet.finish()
        snapshot = fleet.status_snapshot()
        assert snapshot["fleet"]["complete"] is True
        assert snapshot["fleet"]["eta_s"] is None

    def test_set_plan_holds_shard_incomplete_until_all_segments(self):
        """A shard pre-segmented for work stealing must not show complete
        until *every* segment task has reported complete — even if all
        segments seen so far are done."""
        fleet = FleetView(shards=1, target=30)
        fleet.set_plan({0: {"segments": 3, "target": 30, "owner": 0}})
        for segment in (0, 1):
            fleet.update(TelemetryDelta(
                shard=0, segment=segment, segments=3, seq=1, done=10,
                target=10, complete=True,
            ))
        snapshot = fleet.status_snapshot()
        row = snapshot["shards"][0]
        assert row["complete"] is False
        assert row["segments_done"] == 2 and row["segments"] == 3
        assert snapshot["fleet"]["shards_complete"] == 0
        fleet.update(TelemetryDelta(
            shard=0, segment=2, segments=3, seq=1, done=10,
            target=10, complete=True,
        ))
        snapshot = fleet.status_snapshot()
        assert snapshot["shards"][0]["complete"] is True
        assert snapshot["fleet"]["shards_complete"] == 1

    def test_status_rows_carry_ownership_steal_and_resume_state(self):
        fleet = FleetView(shards=2, target=40, run_info={"module": "A"})
        fleet.run_info["resumed_from"] = "/scans/ck"
        fleet.update(TelemetryDelta(
            shard=0, segment=0, segments=2, seq=1, done=10, target=10,
            owner=0, worker=0, complete=True, resumed=True,
        ))
        fleet.update(TelemetryDelta(
            shard=0, segment=1, segments=2, seq=1, done=10, target=10,
            owner=0, worker=1, stolen_from=0, complete=True,
        ))
        fleet.update(TelemetryDelta(
            shard=1, segment=0, segments=1, seq=1, done=20, target=20,
            owner=1, worker=1, complete=True,
        ))
        snapshot = fleet.status_snapshot()
        assert snapshot["run"]["resumed_from"] == "/scans/ck"
        assert snapshot["fleet"]["steals"] == 1
        assert snapshot["fleet"]["resumed_tasks"] == 1
        by_shard = {row["shard"]: row for row in snapshot["shards"]}
        assert by_shard[0]["owner"] == 0
        assert by_shard[0]["workers"] == [0, 1]
        assert by_shard[0]["steals"] == 1
        assert by_shard[0]["stolen_from"] == 0
        assert by_shard[0]["resumed"] is True
        assert by_shard[1]["steals"] == 0
        assert by_shard[1]["stolen_from"] is None
        assert by_shard[1]["resumed"] is False
        counters = fleet.fleet_counters()
        assert counters["steals"] == 1
        assert counters["resumed_tasks"] == 1
        assert json.dumps(snapshot)  # stays JSON-serialisable


# ---------------------------------------------------------------------------
# estimate_eta
# ---------------------------------------------------------------------------


class TestEstimateEta:
    def test_basic_extrapolation(self):
        assert estimate_eta(100, 500, 50.0) == pytest.approx(8.0)

    def test_no_target_or_rate(self):
        assert estimate_eta(100, None, 50.0) is None
        assert estimate_eta(100, 0, 50.0) is None
        assert estimate_eta(0, 500, 0.0) is None

    def test_target_reached_is_zero(self):
        assert estimate_eta(500, 500, 50.0) == 0.0
        assert estimate_eta(600, 500, 50.0) == 0.0


# ---------------------------------------------------------------------------
# ScanView + TelemetryServer: single-process control plane end to end
# ---------------------------------------------------------------------------


def _get(url, timeout=5):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, response.headers.get("Content-Type"), response.read()


class TestServerEndpoints:
    def test_endpoints_serve_live_scan_state(self):
        internet = build_internet(params=EcosystemParams(seed=5))
        names = list(DomainCorpus(CorpusConfig(seed=5)).fqdns(60))
        view = ScanView(run_info={"module": "A", "mode": "iterative"})
        server = TelemetryServer(
            status=view.status_snapshot, metrics=view.prometheus
        ).start()
        try:
            assert server.port > 0
            # before the scan binds: empty but well-formed documents
            status, ctype, body = _get(f"{server.url}/status.json")
            assert status == 200 and ctype == "application/json"
            early = json.loads(body)
            assert early["fleet"]["done"] == 0
            assert early["shards"] == []

            report = ScanRunner(
                internet,
                ScanConfig(module="A", threads=30, seed=5),
                view=view,
                target=len(names),
            ).run(names)

            status, _, body = _get(f"{server.url}/status.json")
            snapshot = json.loads(body)
            assert snapshot["fleet"]["done"] == report.stats.total == 60
            assert snapshot["fleet"]["target"] == 60
            assert snapshot["fleet"]["complete"] is True
            assert snapshot["run"]["module"] == "A"
            assert snapshot["fleet"]["cache_hit_rate"] >= 0.0

            status, ctype, body = _get(f"{server.url}/metrics")
            assert status == 200 and "text/plain" in ctype
            families = parse_prometheus(body.decode("utf-8"))
            assert families["pyzdns_engine_lookups"]["samples"][0][2] == 60.0

            status, ctype, body = _get(f"{server.url}/")
            assert status == 200 and "text/html" in ctype
            assert b"status.json" in body
        finally:
            server.stop()

    def test_unknown_path_is_404(self):
        view = ScanView()
        with TelemetryServer(status=view.status_snapshot, metrics=view.prometheus) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(f"{server.url}/nope")
            assert excinfo.value.code == 404

    def test_provider_error_is_500_not_crash(self):
        def broken():
            raise RuntimeError("boom")

        with TelemetryServer(status=broken, metrics=lambda: "") as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(f"{server.url}/status.json")
            assert excinfo.value.code == 500
            # the server survives the provider error
            status, _, _ = _get(f"{server.url}/metrics")
            assert status == 200

    def test_status_json_reports_resume_and_steal_state(self):
        """During a resumed scan, /status.json must expose where the run
        came from and per-shard ownership/steal annotations — the bits
        an operator checks after restarting a crashed fleet."""
        fleet = FleetView(
            shards=2, target=40,
            run_info={"module": "A", "resumed_from": "/scans/ck"},
        )
        fleet.set_plan({
            0: {"segments": 2, "target": 20, "owner": 0},
            1: {"segments": 2, "target": 20, "owner": 1},
        })
        fleet.update(TelemetryDelta(
            shard=0, segment=0, segments=2, seq=1, done=10, target=10,
            owner=0, worker=0, complete=True, resumed=True,
        ))
        fleet.update(TelemetryDelta(
            shard=1, segment=1, segments=2, seq=1, done=4, target=10,
            owner=1, worker=0, stolen_from=1,
        ))
        with TelemetryServer(
            status=fleet.status_snapshot, metrics=fleet.prometheus
        ) as server:
            status, _, body = _get(f"{server.url}/status.json")
        assert status == 200
        snapshot = json.loads(body)
        assert snapshot["run"]["resumed_from"] == "/scans/ck"
        assert snapshot["fleet"]["steals"] == 1
        assert snapshot["fleet"]["resumed_tasks"] == 1
        by_shard = {row["shard"]: row for row in snapshot["shards"]}
        assert by_shard[0]["owner"] == 0 and by_shard[0]["resumed"] is True
        assert by_shard[0]["complete"] is False  # 1 of 2 segments reported
        assert by_shard[1]["stolen_from"] == 1

    def test_stop_is_idempotent_and_start_rebinds(self):
        view = ScanView()
        server = TelemetryServer(status=view.status_snapshot, metrics=view.prometheus)
        server.start()
        first_port = server.port
        server.stop()
        server.stop()
        server.start()
        assert server.port != 0
        status, _, _ = _get(f"{server.url}/")
        assert status == 200
        server.stop()
        assert first_port > 0


class TestDashboard:
    def test_dashboard_is_self_contained(self):
        """No external scripts, stylesheets, or fonts: the dashboard must
        render from a scan box with no internet access."""
        lowered = DASHBOARD_HTML.lower()
        assert "<script src" not in lowered
        assert "<link" not in lowered
        assert "@import" not in lowered
        assert "http://" not in lowered and "https://" not in lowered

    def test_dashboard_polls_status_and_draws_shards(self):
        assert 'fetch("status.json"' in DASHBOARD_HTML
        assert "shards" in DASHBOARD_HTML
        assert "prefers-color-scheme: dark" in DASHBOARD_HTML

    def test_dashboard_renders_ownership_and_resume_state(self):
        """The fleet table draws the v2 scheduling columns: owner, steal
        and resume badges, segment progress, and the resumed-from line."""
        assert "<th>owner</th>" in DASHBOARD_HTML
        assert "stolen" in DASHBOARD_HTML
        assert "resumed" in DASHBOARD_HTML
        assert "resumed_from" in DASHBOARD_HTML
        assert "segments_done" in DASHBOARD_HTML


# ---------------------------------------------------------------------------
# degenerate rate math and out-of-order resume folding (regression)
# ---------------------------------------------------------------------------


class TestEstimateEtaDegenerateRates:
    """ZeroDivision/NaN/inf hardening: a poisoned rate must yield None,
    never a negative, infinite, or NaN ETA — NaN fails every ``<=``
    comparison, so it used to sail straight into ``/status.json`` where
    ``json.dumps`` emits an invalid bare ``NaN`` token."""

    def test_nan_rate_is_none(self):
        assert estimate_eta(100, 500, float("nan")) is None

    def test_inf_rate_is_none(self):
        assert estimate_eta(100, 500, float("inf")) is None
        assert estimate_eta(100, 500, float("-inf")) is None

    def test_negative_rate_is_none(self):
        assert estimate_eta(100, 500, -3.0) is None

    def test_tiny_rate_overflowing_to_inf_is_none(self):
        assert estimate_eta(0, 10**9, 5e-324) is None

    def test_eta_segment_omitted_for_degenerate_values(self):
        from repro.obs import format_status_line

        for eta in (float("nan"), float("inf"), -1.0):
            line = format_status_line(
                elapsed=1.0, total=10, interval_rate=1.0, average_rate=1.0,
                success_rate=1.0, in_flight=0, timeouts=0, retries=0,
                cache_hit_rate=None, target=100, eta=eta,
            )
            assert "eta" not in line
        line = format_status_line(
            elapsed=1.0, total=10, interval_rate=1.0, average_rate=1.0,
            success_rate=1.0, in_flight=0, timeouts=0, retries=0,
            cache_hit_rate=None, target=100, eta=45.0,
        )
        assert "eta 45s" in line

    def test_snapshot_with_zero_elapsed_and_empty_window_is_json_safe(self):
        """A snapshot taken before any time passed (or any delta landed)
        must still serialise: no ZeroDivisionError, no NaN leak."""
        fleet = FleetView(shards=1, target=100, clock=lambda: 0.0)
        snapshot = fleet.status_snapshot()
        assert snapshot["fleet"]["eta_s"] is None
        assert snapshot["fleet"]["rate_per_s"] == 0.0
        text = json.dumps(snapshot)
        assert "NaN" not in text and "Infinity" not in text


class TestResumeFoldOrdering:
    """Regression (--resume): a resumed run replays the journal before
    the executor lays out the plan, so a replayed shard's *final* delta
    can reach the FleetView before its ``set_plan`` segments.  The fold
    must trust whichever source knows about more segments, and a later
    ``set_plan`` must refine — never erase — what replay taught it."""

    def _replayed_final(self, shard, segment, segments, done):
        return TelemetryDelta(
            shard=shard, segment=segment, segments=segments, seq=9,
            done=done, successes=done, target=done, owner=shard, worker=1,
            stolen_from=0 if segment else None, resumed=True, complete=True,
        )

    def test_final_delta_before_set_plan_keeps_shard_incomplete(self):
        fleet = FleetView(shards=1, target=30)
        # replay: segment 0 of 3 arrives complete, before any plan
        fleet.update(self._replayed_final(0, segment=0, segments=3, done=10))
        row = fleet.status_snapshot()["shards"][0]
        assert row["complete"] is False  # 1 of 3 segments
        assert row["segments"] == 3
        # the plan lands afterwards: must not shrink or reset anything
        fleet.set_plan({0: {"segments": 3, "target": 30, "owner": 0}})
        row = fleet.status_snapshot()["shards"][0]
        assert row["complete"] is False
        assert (row["segments"], row["segments_done"]) == (3, 1)

    def test_counters_survive_out_of_order_fold(self):
        fleet = FleetView(shards=1, target=30)
        fleet.update(self._replayed_final(0, segment=1, segments=2, done=10))
        fleet.set_plan({0: {"segments": 2, "target": 30, "owner": 0}})
        fleet.update(self._replayed_final(0, segment=0, segments=2, done=20))
        counters = fleet.fleet_counters()
        assert counters["done"] == 30
        assert counters["resumed_tasks"] == 2
        assert counters["steals"] == 1  # segment 1 carried stolen_from=0
        assert counters["shards_complete"] == 1
        row = fleet.status_snapshot()["shards"][0]
        assert row["complete"] is True
        assert row["resumed"] is True

    def test_set_plan_merges_instead_of_replacing(self):
        """A second set_plan (the executor refreshing owners) must not
        drop shards or fields learned earlier."""
        fleet = FleetView(shards=2, target=40)
        fleet.set_plan({0: {"segments": 2, "target": 20, "owner": 0}})
        fleet.set_plan({1: {"segments": 1, "target": 20, "owner": 1}})
        fleet.set_plan({0: {"owner": 5}})  # partial refinement
        fleet.update(TelemetryDelta(shard=0, segment=0, segments=2, seq=1,
                                    done=10, target=10, complete=True))
        fleet.update(TelemetryDelta(shard=1, segment=0, segments=1, seq=1,
                                    done=20, target=20, complete=True))
        snapshot = fleet.status_snapshot()
        by_shard = {row["shard"]: row for row in snapshot["shards"]}
        assert by_shard[0]["owner"] == 5  # refined
        assert by_shard[0]["segments"] == 2  # preserved from the first call
        assert by_shard[0]["complete"] is False
        assert by_shard[1]["complete"] is True

    def test_merged_registry_folds_replayed_metrics(self):
        def dump_for(value):
            registry = MetricsRegistry(enabled=True)
            registry.scope("engine").counter("lookups").inc(value)
            return registry.dump()

        fleet = FleetView(shards=1)
        # replayed metrics land before the plan; both must fold
        fleet.update(TelemetryDelta(shard=0, segment=0, segments=2, seq=1,
                                    done=5, complete=True,
                                    metrics=dump_for(5)))
        fleet.set_plan({0: {"segments": 2}})
        fleet.update(TelemetryDelta(shard=0, segment=1, segments=2, seq=1,
                                    done=7, complete=True,
                                    metrics=dump_for(7)))
        assert fleet.merged_registry().snapshot()["engine.lookups"] == 12
