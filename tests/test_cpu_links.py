"""Tests for the CPU queueing model and network path models."""

import random

import pytest

from repro.net import CapacityQueue, CPUModel, GCModel, LatencyModel, LossModel, Simulator, TokenBucket


class TestCPUModel:
    def test_uncontended_work_finishes_after_cost(self):
        sim = Simulator()
        cpu = CPUModel(sim, cores=2)

        def routine():
            yield cpu.execute(0.5)
            return sim.now

        future = sim.spawn(routine())
        sim.run()
        assert future.result() == pytest.approx(0.5)

    def test_parallel_work_uses_all_cores(self):
        sim = Simulator()
        cpu = CPUModel(sim, cores=4)

        def routine():
            yield cpu.execute(1.0)
            return sim.now

        results = sim.run_all(routine() for _ in range(4))
        assert all(r == pytest.approx(1.0) for r in results)

    def test_overload_queues(self):
        sim = Simulator()
        cpu = CPUModel(sim, cores=1)

        def routine():
            yield cpu.execute(1.0)
            return sim.now

        results = sim.run_all(routine() for _ in range(3))
        assert sorted(results) == [pytest.approx(i) for i in (1.0, 2.0, 3.0)]

    def test_throughput_caps_at_cores_over_cost(self):
        """Closed-loop throughput must plateau at cores/cost ops/sec."""
        sim = Simulator()
        cpu = CPUModel(sim, cores=4)
        cost = 0.01  # capacity = 400 ops/s
        completed = []

        def worker():
            for _ in range(20):
                yield cpu.execute(cost)
                completed.append(sim.now)

        sim.run_all(worker() for _ in range(50))
        elapsed = max(completed)
        rate = len(completed) / elapsed
        assert rate == pytest.approx(4 / cost, rel=0.05)

    def test_utilisation(self):
        sim = Simulator()
        cpu = CPUModel(sim, cores=2)

        def routine():
            yield cpu.execute(1.0)

        sim.run_all([routine()])
        assert cpu.utilisation(1.0) == pytest.approx(0.5)
        assert cpu.utilisation(0.0) == 0.0

    def test_requires_at_least_one_core(self):
        with pytest.raises(ValueError):
            CPUModel(Simulator(), cores=0)


class TestGCModel:
    def test_no_stall_inside_period(self):
        gc = GCModel(period=10.0, pause=1.0)
        assert gc.apply(0.0, 5.0) == (0.0, 5.0)

    def test_work_interrupted_by_collection(self):
        gc = GCModel(period=10.0, pause=1.0)
        start, finish = gc.apply(9.5, 1.0)
        assert start == 9.5
        assert finish == pytest.approx(11.5)  # +1s stop-the-world

    def test_work_scheduled_during_stall_waits(self):
        gc = GCModel(period=10.0, pause=1.0)
        start, finish = gc.apply(10.3, 0.2)
        assert start == pytest.approx(11.0)  # pushed past the stall
        assert finish == pytest.approx(11.2)

    def test_disabled(self):
        assert GCModel(period=0, pause=0).apply(0, 100) == (0, 100)

    def test_stop_the_world_stalls_every_core(self):
        """All cores stall during a collection, not just the one whose
        work item crossed the boundary."""
        sim = Simulator()
        cpu = CPUModel(sim, cores=4, gc=GCModel(period=1.0, pause=0.5))
        finish_times = []

        def worker():
            yield 0.99  # arrive just before the collection
            yield cpu.execute(0.02)
            finish_times.append(sim.now)

        sim.run_all(worker() for _ in range(4))
        # every core's work is interrupted or deferred by the stall
        assert all(t >= 1.5 for t in finish_times)

    def test_frequent_short_gc_gives_fewer_long_stalls(self):
        """Same total overhead; the rare-GC config produces longer
        single stalls, which is what times out in-flight queries."""
        rare = GCModel(period=40.0, pause=4.0)
        frequent = GCModel(period=10.0, pause=1.0)
        assert rare.pause / rare.period == frequent.pause / frequent.period
        assert rare.pause > frequent.pause


class TestLatencyModel:
    def test_samples_are_positive_and_spread(self):
        rng = random.Random(1)
        model = LatencyModel(median=0.03)
        samples = [model.sample(rng) for _ in range(2000)]
        assert min(samples) > 0
        mid = sorted(samples)[len(samples) // 2]
        assert mid == pytest.approx(0.03, rel=0.15)

    def test_floor_enforced(self):
        rng = random.Random(2)
        model = LatencyModel(median=0.0005, floor=0.001)
        assert all(model.sample(rng) >= 0.001 for _ in range(100))


class TestLossModel:
    def test_zero_loss_never_drops(self):
        rng = random.Random(3)
        model = LossModel(0.0)
        assert not any(model.dropped(rng) for _ in range(1000))

    def test_loss_rate_approximates_probability(self):
        rng = random.Random(4)
        model = LossModel(0.2)
        drops = sum(model.dropped(rng) for _ in range(10_000))
        assert 0.17 < drops / 10_000 < 0.23


class TestTokenBucket:
    def test_burst_then_throttle(self):
        bucket = TokenBucket(rate=10, burst=5)
        allowed = sum(bucket.allow(0.0) for _ in range(10))
        assert allowed == 5

    def test_refills_over_time(self):
        bucket = TokenBucket(rate=10, burst=5)
        for _ in range(5):
            assert bucket.allow(0.0)
        assert not bucket.allow(0.0)
        assert bucket.allow(0.2)  # 2 tokens refilled

    def test_sustained_rate_is_enforced(self):
        bucket = TokenBucket(rate=100, burst=100)
        allowed = sum(bucket.allow(i / 1000) for i in range(5000))  # 1000 qps for 5s
        # initial burst of 100 plus 100/s sustained over 5s
        assert allowed == pytest.approx(100 + 100 * 5, rel=0.05)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0)


class TestCapacityQueue:
    def test_underload_has_no_delay(self):
        queue = CapacityQueue(rate=100)
        assert queue.admit(0.0) == 0.0
        assert queue.admit(1.0) == 0.0

    def test_backlog_builds_delay(self):
        queue = CapacityQueue(rate=10)  # 100ms per query
        first = queue.admit(0.0)
        second = queue.admit(0.0)
        assert first == 0.0
        assert second == pytest.approx(0.1)

    def test_overload_drops(self):
        queue = CapacityQueue(rate=10, max_backlog=0.5)
        outcomes = [queue.admit(0.0) for _ in range(20)]
        assert None in outcomes
        assert queue.dropped > 0
        assert queue.served + queue.dropped == 20

    def test_drains_over_time(self):
        queue = CapacityQueue(rate=10, max_backlog=0.5)
        for _ in range(6):
            queue.admit(0.0)
        assert queue.admit(0.0) is None
        assert queue.admit(10.0) == 0.0
