"""Determinism regression: the CLI run twice with the same seed must be
byte-identical — output rows, virtual duration, and (with a fault plan)
injected adversity.  This is the replay contract every debugging and
chaos workflow leans on; it runs tier-1 so drift is caught at the PR
that introduces it."""

import json

import pytest

from repro.framework.cli import main
from repro.workloads import CorpusConfig, DomainCorpus

NAMES = 500


@pytest.fixture(scope="module")
def names_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("determinism") / "names.txt"
    path.write_text("\n".join(DomainCorpus(CorpusConfig(seed=41)).fqdns(NAMES)) + "\n")
    return path


def _run_cli(tmp_path, names_file, tag, extra_args=()):
    out = tmp_path / f"out-{tag}.jsonl"
    meta = tmp_path / f"meta-{tag}.json"
    code = main(
        [
            "A",
            "--input-file", str(names_file),
            "--output-file", str(out),
            "--metadata-file", str(meta),
            "--no-timestamps",
            "--quiet",
            "--seed", "77",
            "--threads", "100",
            *extra_args,
        ]
    )
    assert code == 0
    return out.read_bytes(), json.loads(meta.read_text())


def test_same_seed_is_byte_identical(tmp_path, names_file):
    output_a, meta_a = _run_cli(tmp_path, names_file, "a")
    output_b, meta_b = _run_cli(tmp_path, names_file, "b")
    assert output_a == output_b
    assert output_a.count(b"\n") == NAMES
    # virtual time is part of the replay contract; wall time is not
    assert meta_a["durations"]["virtual_s"] == meta_b["durations"]["virtual_s"]
    assert meta_a["statuses"] == meta_b["statuses"]
    assert meta_a["metrics"] == meta_b["metrics"]


def test_chaos_run_is_byte_identical(tmp_path, names_file):
    chaos = ("--fault-plan", "moderate", "--chaos-seed", "5",
             "--backoff", "0.05", "--server-health")
    output_a, meta_a = _run_cli(tmp_path, names_file, "ca", chaos)
    output_b, meta_b = _run_cli(tmp_path, names_file, "cb", chaos)
    assert output_a == output_b
    assert meta_a["durations"]["virtual_s"] == meta_b["durations"]["virtual_s"]
    assert meta_a["metrics"] == meta_b["metrics"]
    assert meta_a["metrics"]["faults.total_activations"] > 0


def test_different_chaos_seed_diverges(tmp_path, names_file):
    base = ("--fault-plan", "moderate", "--backoff", "0.05")
    output_a, _ = _run_cli(tmp_path, names_file, "s5", ("--chaos-seed", "5", *base))
    output_b, _ = _run_cli(tmp_path, names_file, "s6", ("--chaos-seed", "6", *base))
    assert output_a != output_b
