"""DNSSEC: the validating resolver path over the signed universe —
validation outcomes, RRSIG-aware cache lifetimes, zone-delta chain
invalidation, sabotage fault directives, the deployment study, and the
oracle's security cross-check.

Fixture domains are deterministic in the seed-2022 universe (found by
probing ``synth.dnssec_profile``): ``smoke-124.org`` signs cleanly,
``smoke-203.org`` is an island of trust, ``smoke-687.org`` has a broken
parent DS, ``smoke-3206.org`` serves expired signatures, and the
``com`` TLD is one of the unsigned registries.
"""

import random

import pytest

from repro.core import (
    BOGUS,
    INDETERMINATE,
    INSECURE,
    SECURE,
    SECURITY_STATES,
    Resolver,
    ResolverConfig,
    SelectiveCache,
    Status,
    trust_anchor_for,
)
from repro.dnslib import DNSClass, Name, ResourceRecord, RRType
from repro.dnslib.rdata.address import A
from repro.ecosystem import (
    EPOCH_BASE,
    EcosystemParams,
    build_internet,
    publish_zone_delta,
)
from repro.ecosystem.dnssec import sign_rrset, zone_key_bytes
from repro.faults import FaultInjector, FaultPlan, RolloverDesync, StripRrsig
from repro.net import derive_seed
from repro.oracle import (
    DifferentialConfig,
    DifferentialOracle,
    OracleResult,
    ProductionView,
    compare_views,
    run_differential,
)
from repro.service import ResolverService, ServiceConfig
from repro.workloads import CorpusConfig, DomainCorpus

N = Name.from_text
SEED = 2022

CLEAN = N("smoke-124.org")
ISLAND = N("smoke-203.org")
BROKEN_DS = N("smoke-687.org")
EXPIRED = N("smoke-3206.org")
UNSIGNED_ORG = N("smoke-0.org")
UNSIGNED_TLD = N("smoke-0.com")
NXDOMAIN_ORG = N("nope-1.org")


@pytest.fixture(scope="module")
def internet():
    return build_internet(params=EcosystemParams(seed=SEED))


@pytest.fixture(scope="module")
def synth(internet):
    return internet.synth


def validating_resolver(internet, **config_overrides):
    return Resolver(
        internet, config=ResolverConfig(dnssec=True, **config_overrides)
    )


# ---------------------------------------------------------------------------
# the planted universe
# ---------------------------------------------------------------------------


class TestPlantedProfiles:
    """Pin the fixture domains' ground truth so a zone-generator change
    that silently moves them shows up here, not as a validator 'bug'."""

    def test_root_and_org_signed(self, synth):
        assert synth.dnssec_profile(Name.root()).signed
        assert synth.dnssec_profile(N("org")).signed
        assert not synth.dnssec_profile(N("com")).signed

    def test_fixture_classes(self, synth):
        clean = synth.dnssec_profile(CLEAN)
        assert clean.signed and not (clean.island or clean.broken_ds or clean.expired)
        assert synth.dnssec_profile(ISLAND).island
        assert synth.dnssec_profile(BROKEN_DS).broken_ds
        assert synth.dnssec_profile(EXPIRED).expired
        assert not synth.dnssec_profile(UNSIGNED_ORG).signed
        assert synth.profile(UNSIGNED_ORG).exists
        assert not synth.profile(NXDOMAIN_ORG).exists

    def test_generation_rolls_keys_but_not_deployment(self):
        internet = build_internet(params=EcosystemParams(seed=SEED), wire_mode="never")
        before = internet.synth.dnssec_profile(CLEAN)
        publish_zone_delta(internet, CLEAN)
        after = internet.synth.dnssec_profile(CLEAN)
        assert after.signed == before.signed
        assert after.island == before.island
        assert after.key != before.key
        assert after.key == zone_key_bytes(SEED, CLEAN, 1)


# ---------------------------------------------------------------------------
# validation outcomes (the tentpole state machine)
# ---------------------------------------------------------------------------


class TestValidationOutcomes:
    def test_clean_chain_secure(self, internet):
        result = validating_resolver(internet).lookup(CLEAN, RRType.A)
        assert result.status == Status.NOERROR
        assert result.security == SECURE

    def test_island_of_trust_insecure(self, internet):
        result = validating_resolver(internet).lookup(ISLAND, RRType.A)
        assert result.status == Status.NOERROR
        assert result.security == INSECURE

    def test_broken_ds_bogus(self, internet):
        result = validating_resolver(internet).lookup(BROKEN_DS, RRType.A)
        assert result.status == Status.NOERROR
        assert result.security == BOGUS

    def test_expired_signature_bogus(self, internet):
        result = validating_resolver(internet).lookup(EXPIRED, RRType.A)
        assert result.status == Status.NOERROR
        assert result.security == BOGUS

    def test_unsigned_base_under_signed_tld_insecure(self, internet):
        result = validating_resolver(internet).lookup(UNSIGNED_ORG, RRType.A)
        assert result.status == Status.NOERROR
        assert result.security == INSECURE

    def test_unsigned_tld_insecure(self, internet):
        result = validating_resolver(internet).lookup(UNSIGNED_TLD, RRType.A)
        assert result.status == Status.NOERROR
        assert result.security == INSECURE

    def test_nxdomain_under_signed_tld_is_authenticated(self, internet):
        result = validating_resolver(internet).lookup(NXDOMAIN_ORG, RRType.A)
        assert result.status == Status.NXDOMAIN
        assert result.security == SECURE

    def test_dnssec_off_reports_nothing(self, internet):
        result = Resolver(internet).lookup(CLEAN, RRType.A)
        assert result.security is None
        assert "dnssec" not in result.to_json().get("data", {})

    def test_security_in_result_json(self, internet):
        row = validating_resolver(internet).lookup(CLEAN, RRType.A).to_json()
        assert row["data"]["dnssec"] == SECURE

    def test_chain_memoised_in_cache(self, internet):
        resolver = validating_resolver(internet)
        resolver.lookup(CLEAN, RRType.A)
        assert resolver.cache.get_security(Name.root()) == (
            SECURE, zone_key_bytes(SEED, Name.root(), 0)
        )
        assert resolver.cache.get_security(N("org")) == (
            SECURE, zone_key_bytes(SEED, N("org"), 0)
        )
        assert resolver.cache.get_security(CLEAN) == (
            SECURE, zone_key_bytes(SEED, CLEAN, 0)
        )

    def test_warm_lookup_reuses_memo(self, internet):
        resolver = validating_resolver(internet)
        resolver.lookup(CLEAN, RRType.A)
        cold_queries = internet.network.stats.udp_queries
        second = resolver.lookup(N("smoke-137.org"), RRType.A)
        warm_queries = internet.network.stats.udp_queries - cold_queries
        assert second.security == SECURE
        # the org/root chain comes from the memo: the warm lookup only
        # walks the new base's own cut (DS + DNSKEY), not the whole chain
        assert warm_queries < cold_queries

    def test_trust_anchor_mismatch_bogus(self, internet):
        resolver = validating_resolver(internet)
        resolver.config.trust_anchor = b"\x00" * 16
        result = resolver.lookup(CLEAN, RRType.A)
        assert result.security == BOGUS


# ---------------------------------------------------------------------------
# satellite 2: RRSIG-aware cache lifetimes
# ---------------------------------------------------------------------------


class TestRrsigAwareLifetimes:
    def _cache(self, now, **kw):
        kw.setdefault("epoch_base", EPOCH_BASE)
        return SelectiveCache(
            capacity=100, policy="all", clock=lambda: now[0], **kw
        )

    def _signed_rrset(self, ttl=300, expires_in=50):
        owner = N("www.signed-ttl.org")
        record = ResourceRecord(owner, RRType.A, DNSClass.IN, ttl, A("192.0.2.7"))
        rrsig = sign_rrset(
            [record], N("org"), b"k" * 16,
            inception=EPOCH_BASE - 10, expiration=EPOCH_BASE + expires_in,
        )
        return owner, [record, rrsig]

    def test_answer_expires_at_signature_not_ttl(self):
        now = [0.0]
        cache = self._cache(now)
        owner, records = self._signed_rrset(ttl=300, expires_in=50)
        cache.put_answer(owner, RRType.A, records)
        now[0] = 49.0  # signature still valid
        assert cache.get_answer(owner, RRType.A) is not None
        now[0] = 50.0  # virtual clock crosses the RRSIG expiration
        assert cache.get_answer(owner, RRType.A) is None
        assert cache.stats.expired == 1

    def test_unsigned_answer_keeps_full_ttl(self):
        now = [0.0]
        cache = self._cache(now)
        owner = N("www.unsigned-ttl.com")
        record = ResourceRecord(owner, RRType.A, DNSClass.IN, 300, A("192.0.2.8"))
        cache.put_answer(owner, RRType.A, [record])
        now[0] = 299.0
        assert cache.get_answer(owner, RRType.A) is not None

    def test_already_expired_signature_never_stored(self):
        now = [0.0]
        cache = self._cache(now)
        owner, records = self._signed_rrset(expires_in=-1)
        cache.put_answer(owner, RRType.A, records)
        assert len(cache) == 0
        assert cache.get_answer(owner, RRType.A) is None

    def test_without_epoch_base_behaviour_is_pre_dnssec(self):
        """``epoch_base=None`` pins the exact pre-DNSSEC lifetime: the
        RRSIG is cached like any record and only the TTL counts."""
        now = [0.0]
        cache = self._cache(now, epoch_base=None)
        owner, records = self._signed_rrset(ttl=300, expires_in=50)
        cache.put_answer(owner, RRType.A, records)
        now[0] = 250.0  # far past the signature, inside the TTL
        assert cache.get_answer(owner, RRType.A) is not None


# ---------------------------------------------------------------------------
# satellite 3: zone deltas must drop the chain memos below the cut
# ---------------------------------------------------------------------------


class TestDeltaDropsChainMemos:
    def test_stale_memo_is_load_bearing(self):
        """A delta rolls the zone key.  If invalidation missed the
        ``("sec", ...)`` memo, the next lookup would validate gen-1
        signatures against the pinned gen-0 key and land Bogus — the
        exact regression ``invalidate_subtree`` exists to prevent."""
        internet = build_internet(params=EcosystemParams(seed=SEED))
        cache = SelectiveCache(
            capacity=10_000, policy="selective",
            clock=lambda: internet.sim.now, epoch_base=EPOCH_BASE,
        )
        resolver = Resolver(internet, cache=cache, config=ResolverConfig(dnssec=True))
        first = resolver.lookup(CLEAN, RRType.A)
        assert first.security == SECURE
        assert cache.get_security(CLEAN) == (SECURE, zone_key_bytes(SEED, CLEAN, 0))

        publish_zone_delta(internet, CLEAN)
        # simulate a buggy invalidation: delegations and answers below
        # the cut are dropped, but the security memos are left pinned
        suffix = CLEAN.canonical_key()
        for key in [
            k for k in cache._keys
            if k[0] != "sec" and k[1][-len(suffix):] == suffix
        ]:
            cache._drop_key(key)
        stale = resolver.lookup(CLEAN, RRType.A)
        assert stale.status == Status.NOERROR
        assert stale.security == BOGUS  # gen-1 RRSIGs vs pinned gen-0 key

        dropped = cache.invalidate_subtree(CLEAN)
        assert dropped > 0
        fresh = resolver.lookup(CLEAN, RRType.A)
        assert fresh.status == Status.NOERROR
        assert fresh.security == SECURE
        assert cache.get_security(CLEAN) == (SECURE, zone_key_bytes(SEED, CLEAN, 1))

    def test_invalidate_subtree_drops_sec_and_ds_state(self):
        internet = build_internet(params=EcosystemParams(seed=SEED))
        cache = SelectiveCache(
            capacity=10_000, policy="all",
            clock=lambda: internet.sim.now, epoch_base=EPOCH_BASE,
        )
        resolver = Resolver(internet, cache=cache, config=ResolverConfig(dnssec=True))
        resolver.lookup(CLEAN, RRType.A)
        assert cache.get_security(CLEAN) is not None
        assert cache.get_answer(CLEAN, RRType.DS) is not None  # parent-side DS
        cache.invalidate_subtree(CLEAN)
        assert cache.get_security(CLEAN) is None
        assert cache.get_answer(CLEAN, RRType.DS) is None
        assert cache.get_security(N("org")) is not None  # above the cut: kept

    def test_service_delta_routine_rolls_the_memo(self):
        """Through the daemon's own delta machinery: seed 24's first
        delta lands on ``d7198390-6.dev`` (signed, clean, in the
        catalog), so after the run the cached chain memo must hold the
        *generation-1* key — the gen-0 memo surviving the delta is the
        regression this test pins."""
        cfg = ServiceConfig(
            seed=24, duration=240.0, catalog_size=40, base_qps=3.0,
            workers=4, dnssec=True, delta_times=(100.0,),
            revalidation="incremental", status_interval=100.0,
        )
        # recompute the delta target exactly like the daemon does
        catalog = [
            N(t) for t in DomainCorpus(CorpusConfig(seed=cfg.seed)).fqdns(cfg.catalog_size)
        ]
        rng = random.Random(derive_seed(cfg.seed, "deltas"))
        service = ResolverService(cfg)
        base = service.internet.synth.base_domain_of(catalog[rng.randrange(len(catalog))])
        assert base == N("d7198390-6.dev")

        report = service.run()
        assert report.counters["deltas_published"] == 1
        assert report.counters["revalidate_jobs"] > 0
        assert service.cache.get_security(base) == (
            SECURE, zone_key_bytes(cfg.seed, base, 1)
        )


# ---------------------------------------------------------------------------
# fault directives: strip_rrsig / rollover_desync
# ---------------------------------------------------------------------------


class TestDnssecFaults:
    def _lookup_under(self, plan, dnssec=True):
        internet = build_internet(params=EcosystemParams(seed=SEED))
        injector = FaultInjector(plan, sim=internet.sim, seed=5)
        injector.attach(internet.network)
        config = ResolverConfig(dnssec=dnssec)
        result = Resolver(internet, config=config).lookup(CLEAN, RRType.A)
        return result, injector

    def test_strip_rrsig_turns_secure_into_bogus(self):
        result, injector = self._lookup_under(FaultPlan([StripRrsig()]))
        assert result.status == Status.NOERROR
        assert result.security == BOGUS
        assert injector.total_activations() > 0

    def test_rollover_desync_turns_secure_into_bogus(self):
        result, injector = self._lookup_under(FaultPlan([RolloverDesync()]))
        assert result.status == Status.NOERROR
        assert result.security == BOGUS
        assert injector.total_activations() > 0

    def test_directives_inert_without_do_bit(self):
        """A DNSSEC-oblivious lookup carries no RRSIGs, so the sabotage
        directives must neither fire nor perturb the reply stream."""
        result, injector = self._lookup_under(FaultPlan([StripRrsig()]), dnssec=False)
        assert result.status == Status.NOERROR
        assert result.security is None
        assert injector.total_activations() == 0

    def test_plan_json_round_trip(self):
        import json

        plan = FaultPlan(
            [StripRrsig(servers=("10.4.",)), RolloverDesync(probability=0.5)],
            name="dnssec-sabotage",
        )
        again = FaultPlan.from_json(json.loads(json.dumps(plan.to_json())))
        directives = list(again)
        assert [d.kind for d in directives] == ["strip_rrsig", "rollover_desync"]
        assert directives[1].probability == 0.5


# ---------------------------------------------------------------------------
# satellite 4: the oracle over the signed universe
# ---------------------------------------------------------------------------


class TestOracleSecurity:
    def test_expected_security_white_box(self):
        oracle = DifferentialOracle(seed=SEED, dnssec=True)
        expected = oracle.reference.expected_security
        assert expected(CLEAN) == SECURE
        assert expected(ISLAND) == INSECURE
        assert expected(BROKEN_DS) == BOGUS
        assert expected(EXPIRED) == BOGUS
        assert expected(UNSIGNED_TLD) == INSECURE
        assert expected(NXDOMAIN_ORG) == SECURE

    def test_compare_views_has_teeth(self):
        """A validator that calls a planted-Bogus chain Secure must
        diverge — otherwise the sweep proves nothing by passing."""
        oracle = OracleResult(
            name="smoke-687.org", qtype=int(RRType.A), status="NOERROR",
            final_key="smoke-687.org.", final_name="smoke-687.org.",
            chain=("smoke-687.org.",), acceptable=(("192.0.2.1",),),
            security=BOGUS,
        )
        lying = ProductionView(
            status="NOERROR", final_key="smoke-687.org.",
            final_name="smoke-687.org.", terminal=("192.0.2.1",),
            security=SECURE,
        )
        verdict, reason = compare_views(lying, oracle)
        assert verdict == "diverge"
        assert "validation" in reason
        honest = ProductionView(
            status="NOERROR", final_key="smoke-687.org.",
            final_name="smoke-687.org.", terminal=("192.0.2.1",),
            security=BOGUS,
        )
        assert compare_views(honest, oracle)[0] == "agree"
        # indeterminate (chain fetches died) is never a divergence
        unsure = ProductionView(
            status="NOERROR", final_key="smoke-687.org.",
            final_name="smoke-687.org.", terminal=("192.0.2.1",),
            security=INDETERMINATE,
        )
        assert compare_views(unsure, oracle)[0] == "agree"

    def test_differential_sweep_zero_divergences(self):
        report = run_differential(
            DifferentialConfig(
                seed=SEED, names=25, policies=("selective", "all"),
                evictions=("lru",), fault_plans=(None,), dnssec=True,
            )
        )
        assert report.checks > 0
        assert report.divergences == []

    def test_differential_sweep_off_still_clean(self):
        report = run_differential(
            DifferentialConfig(
                seed=SEED, names=15, policies=("selective",),
                evictions=("lru",), fault_plans=(None,), dnssec=False,
            )
        )
        assert report.divergences == []


# ---------------------------------------------------------------------------
# the deployment study
# ---------------------------------------------------------------------------


class TestDeploymentStudy:
    def test_measured_equals_planted(self, internet):
        from repro.analysis import run_dnssec_study

        bases = list(DomainCorpus(CorpusConfig(seed=SEED)).base_domains(2000))
        findings = run_dnssec_study(internet, bases, threads=500, seed=SEED)
        assert findings.mismatches == 0
        assert findings.domains_semantic > 0
        assert findings.measured["secure"] == findings.planted["secure"]
        assert findings.measured["bogus"] == findings.planted["bogus"]
        assert findings.measured["bogus"] > 0  # the anomalies actually fired
        assert 0.0 < findings.signed_fraction < 0.2
        payload = findings.to_json()
        assert payload["mismatches"] == 0
        assert payload["measured_secure_pct"] == payload["planted_secure_pct"]


# ---------------------------------------------------------------------------
# framework / CLI wiring
# ---------------------------------------------------------------------------


class TestCliWiring:
    def test_dnssec_requires_iterative(self, tmp_path):
        from repro.framework.cli import main as cli_main

        names = tmp_path / "names.txt"
        names.write_text("smoke-124.org\n")
        with pytest.raises(SystemExit):
            cli_main([
                "A", "-f", str(names), "--mode", "external", "--dnssec",
                "-o", str(tmp_path / "out.jsonl"),
            ])

    def test_rows_carry_validation_state(self, tmp_path):
        import json

        from repro.framework.cli import main as cli_main

        names = tmp_path / "names.txt"
        names.write_text("smoke-124.org\nsmoke-0.com\nnope-1.org\n")
        out = tmp_path / "out.jsonl"
        code = cli_main([
            "A", "-f", str(names), "--dnssec", "--seed", str(SEED),
            "--threads", "3", "-o", str(out), "--quiet",
        ])
        assert code == 0
        rows = {row["name"]: row for row in map(json.loads, out.read_text().splitlines())}
        assert rows["smoke-124.org"]["data"]["dnssec"] == SECURE
        assert rows["smoke-0.com"]["data"]["dnssec"] == INSECURE
        assert rows["nope-1.org"]["data"]["dnssec"] == SECURE

    def test_scan_stats_tally_outcomes(self, internet):
        from repro.framework import ScanConfig, ScanRunner

        config = ScanConfig(
            module="A", mode="iterative", threads=4, seed=SEED, dnssec=True
        )
        report = ScanRunner(internet, config).run(
            ["smoke-124.org", "smoke-203.org", "smoke-687.org"]
        )
        stats = report.dnssec_stats
        assert stats is not None
        assert stats.get(SECURE, 0) >= 1
        assert stats.get(INSECURE, 0) >= 1
        assert stats.get(BOGUS, 0) >= 1
        assert set(stats) <= set(SECURITY_STATES)

    def test_trust_anchor_helper_matches_root(self, synth):
        from repro.ecosystem.dnssec import ds_digest

        anchor = trust_anchor_for(synth)
        assert anchor == ds_digest(Name.root(), synth.dnssec_profile(Name.root()).key)

    def test_service_config_serialises_dnssec(self):
        assert ServiceConfig(dnssec=True).to_json()["dnssec"] is True
        assert ServiceConfig().to_json()["dnssec"] is False
