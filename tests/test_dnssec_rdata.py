"""Property tests pinning the DNSSEC rdata codecs' symmetry.

The round-trip audit for the validating-resolver work found the
decode→encode→decode cycle already stable for every DNSSEC type; these
hypothesis properties pin that invariant (multi-window NSEC bitmaps,
empty bitmaps, root-signer RRSIGs, empty salts/signatures, the
windowed-bitmap canonical form) so future codec edits cannot silently
reintroduce an asymmetry.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dnslib import (
    DNSClass,
    Flags,
    Message,
    Name,
    Opcode,
    Question,
    ResourceRecord,
    RRType,
    WireError,
    WireReader,
    WireWriter,
)
from repro.dnslib.rdata._util import decode_type_bitmap, encode_type_bitmap
from repro.dnslib.rdata.dnssec import (
    CSYNC,
    DNSKEY,
    DS,
    NSEC,
    NSEC3,
    NSEC3PARAM,
    NXT,
    RRSIG,
)

labels = st.binary(min_size=1, max_size=63)
names = st.builds(
    Name,
    st.lists(labels, min_size=0, max_size=6).filter(
        lambda ls: 1 + sum(len(l) + 1 for l in ls) <= 255
    ),
)
u8 = st.integers(0, 0xFF)
u16 = st.integers(0, 0xFFFF)
u32 = st.integers(0, 0xFFFFFFFF)
type_sets = st.lists(u16, max_size=30)
small_bytes = st.binary(max_size=48)

dnssec_rdatas = st.one_of(
    st.builds(DNSKEY, u16, u8, u8, small_bytes),
    st.builds(DS, u16, u8, u8, small_bytes),
    st.builds(RRSIG, u16, u8, u8, u32, u32, u32, u16, names, small_bytes),
    st.builds(NSEC, names, type_sets),
    st.builds(
        NSEC3, u8, u8, u16, st.binary(max_size=32), st.binary(max_size=32), type_sets
    ),
    st.builds(NSEC3PARAM, u8, u8, u16, st.binary(max_size=32)),
    st.builds(NXT, names, st.binary(max_size=32)),
    st.builds(CSYNC, u32, u16, type_sets),
)


def roundtrip(rdata):
    """encode → decode → re-encode; asserts byte-stability, returns the
    decoded instance for field checks."""
    writer = WireWriter(enable_compression=False)
    rdata.to_wire(writer)
    wire = writer.getvalue()
    decoded = type(rdata).from_wire(WireReader(wire), len(wire))
    writer2 = WireWriter(enable_compression=False)
    decoded.to_wire(writer2)
    assert writer2.getvalue() == wire
    return decoded


@settings(max_examples=300)
@given(dnssec_rdatas)
def test_rdata_wire_roundtrip_is_byte_stable(rdata):
    decoded = roundtrip(rdata)
    for slot in type(rdata).__slots__:
        assert getattr(decoded, slot) == getattr(rdata, slot)


@settings(max_examples=200)
@given(dnssec_rdatas)
def test_rdata_survives_a_message(rdata):
    """The same stability through the full message codec (rdlength
    framing, name handling inside rdata, section reassembly)."""
    owner = Name.from_text("owner.example")
    record = ResourceRecord(owner, rdata.rrtype, DNSClass.IN, 300, rdata)
    message = Message(
        id=7,
        flags=Flags(response=True, opcode=Opcode.QUERY),
        questions=[Question(owner, rdata.rrtype)],
        answers=[record],
    )
    first = message.to_wire()
    decoded = Message.from_wire(first)
    assert decoded.to_wire() == first
    got = decoded.answers[0].rdata
    for slot in type(rdata).__slots__:
        assert getattr(got, slot) == getattr(rdata, slot)


@given(type_sets)
def test_type_bitmap_roundtrip_and_canonical(types):
    encoded = encode_type_bitmap(tuple(types))
    decoded = decode_type_bitmap(encoded)
    assert decoded == tuple(sorted(set(types)))
    # canonical: re-encoding the decoded set reproduces the bytes
    assert encode_type_bitmap(decoded) == encoded


class TestBitmapEdges:
    def test_empty_bitmap(self):
        assert encode_type_bitmap(()) == b""
        assert decode_type_bitmap(b"") == ()

    def test_type_zero_and_window_boundaries(self):
        for types in ((0,), (255,), (256,), (255, 256), (65535,), (0, 255, 256, 65535)):
            assert decode_type_bitmap(encode_type_bitmap(types)) == types

    def test_malformed_blocks_rejected(self):
        with pytest.raises(WireError):
            decode_type_bitmap(b"\x00")  # truncated header
        with pytest.raises(WireError):
            decode_type_bitmap(b"\x00\x00")  # zero-length block
        with pytest.raises(WireError):
            decode_type_bitmap(b"\x00\x21" + b"\x00" * 33)  # block > 32 bytes
        with pytest.raises(WireError):
            decode_type_bitmap(b"\x00\x04\xff")  # block overruns the data


class TestRdataEdges:
    def test_nsec_empty_bitmap(self):
        decoded = roundtrip(NSEC(Name.from_text("next.example"), ()))
        assert decoded.types == ()

    def test_nsec_multi_window_bitmap(self):
        types = (int(RRType.A), int(RRType.RRSIG), 256, 1000, 65535)
        decoded = roundtrip(NSEC(Name.from_text("next.example"), types))
        assert decoded.types == tuple(sorted(types))

    def test_rrsig_root_signer_empty_signature(self):
        decoded = roundtrip(
            RRSIG(int(RRType.DNSKEY), 253, 0, 3600, 2**32 - 1, 0, 0, Name.root(), b"")
        )
        assert decoded.signer.is_root
        assert decoded.signature == b""

    def test_nsec3_all_fields_empty(self):
        decoded = roundtrip(NSEC3(1, 0, 0, b"", b"", ()))
        assert decoded.salt == b"" and decoded.next_hashed == b""
        assert decoded.types == ()

    def test_dnskey_empty_key(self):
        assert roundtrip(DNSKEY(257, 3, 253, b"")).public_key == b""

    def test_nxt_opaque_bitmap(self):
        decoded = roundtrip(NXT(Name.from_text("z.example"), b"\x00\x7f\x80"))
        assert decoded.bitmap == b"\x00\x7f\x80"
