"""Edge-case tests across the stack: malformed inputs, odd
configurations, and defensive behaviour."""

import pytest

from repro.core import Resolver, ResolverConfig, SelectiveCache, Status
from repro.core.machine import ExternalMachine, IterativeMachine
from repro.dnslib import Message, Name, Rcode, RRType
from repro.ecosystem import EcosystemParams, build_internet
from repro.modules import get_module, ModuleContext
from repro.net import ServerReply, SimNetwork, Simulator, LatencyModel


@pytest.fixture(scope="module")
def internet():
    return build_internet(params=EcosystemParams(seed=88), wire_mode="always")


class MalformedServer:
    """Answers with garbage bytes that fail to parse."""

    def handle_query(self, query, client_ip, now, protocol):
        response = query.make_response()
        # claim 5 answers but include none: decoders must reject this
        return ServerReply(response)


class TestResolverEdgeCases:
    def test_lookup_of_bare_tld(self, internet):
        resolver = Resolver(internet, mode="iterative")
        result = resolver.lookup("com", RRType.A)
        # TLD apex has no A record: NOERROR/NODATA
        assert result.status in (Status.NOERROR, Status.NXDOMAIN)
        assert not result.answers

    def test_lookup_of_root(self, internet):
        resolver = Resolver(internet, mode="iterative")
        result = resolver.lookup(".", RRType.NS)
        assert result.status in (Status.NOERROR, Status.ERROR)

    def test_unknown_tld_iterative(self, internet):
        resolver = Resolver(internet, mode="iterative")
        result = resolver.lookup("host.notatld", RRType.A)
        assert result.status == Status.NXDOMAIN

    def test_very_deep_name(self, internet):
        resolver = Resolver(internet, mode="iterative")
        deep = ".".join(["x"] * 20) + ".com"
        result = resolver.lookup(deep, RRType.A)
        assert result.status in (Status.NOERROR, Status.NXDOMAIN)

    def test_custom_external_resolver_list(self, internet):
        resolver = Resolver(
            internet, mode="external",
            resolver_ips=[internet.google_ip, internet.cloudflare_ip],
        )
        result = resolver.lookup("edge-0.com", RRType.A)
        assert result.status in (Status.NOERROR, Status.NXDOMAIN)

    def test_zero_retries_config(self, internet):
        resolver = Resolver(internet, mode="google", config=ResolverConfig(retries=0))
        result = resolver.lookup("edge-1.com", RRType.A)
        assert result.status in (Status.NOERROR, Status.NXDOMAIN, Status.SERVFAIL, Status.TIMEOUT)

    def test_case_preserved_in_query_name(self, internet):
        resolver = Resolver(internet, mode="iterative")
        upper = resolver.lookup("EDGE-2.COM", RRType.A)
        lower = resolver.lookup("edge-2.com", RRType.A)
        assert upper.status == lower.status


class TestQueryTypeCoverage:
    """Raw modules for less common types still behave sanely on the
    simulated Internet (NODATA rather than crashes)."""

    @pytest.mark.parametrize("module_name", [
        "AAAA", "NS", "SOA", "TXT", "MX", "CAA", "CNAME", "SRV",
        "DNSKEY", "TLSA", "NAPTR", "URI", "LOC", "SSHFP",
    ])
    def test_module_never_crashes(self, internet, module_name):
        import random

        from repro.core.engine import SimDriver
        from repro.net import SimUDPSocket, SourceIPPool

        module = get_module(module_name)
        context = ModuleContext(
            mode="external",
            resolver_ips=[internet.google_ip],
            config=ResolverConfig(retries=1),
            rng=random.Random(1),
        )
        driver = SimDriver(internet.network)
        socket = SimUDPSocket(internet.network, SourceIPPool())
        routine = driver.execute(module.lookup("edge-3.com", context), socket)
        future = internet.sim.spawn(routine)
        internet.sim.run()
        row = future.result()
        assert "status" in row


class TestMachineDefensiveness:
    def test_iterative_with_no_root_servers(self):
        machine = IterativeMachine(SelectiveCache(), [], ResolverConfig())
        gen = machine.resolve("a.com", RRType.A)
        with pytest.raises(Exception):
            # zero servers is a configuration error; it must not loop
            effect = next(gen)
            for _ in range(100):
                effect = gen.send(None)

    def test_external_timeout_zero_times_out_fast(self):
        sim = Simulator()
        network = SimNetwork(sim, wire_mode="never")
        network.register_server("10.0.0.1", MalformedServer(), latency=LatencyModel(median=0.05))
        machine = ExternalMachine(["10.0.0.1"], ResolverConfig(retries=0, external_timeout=0.01))

        def routine():
            gen = machine.resolve("a.com", RRType.A)
            effect = next(gen)
            response = yield network.query_udp("198.18.0.0", effect.server_ip,
                                               _msg(effect), effect.timeout)
            try:
                gen.send(response)
            except StopIteration as stop:
                return stop.value

        future = sim.spawn(routine())
        sim.run()
        assert future.result().status == Status.TIMEOUT


def _msg(effect):
    return Message.make_query(effect.name, effect.qtype, recursion_desired=True)
