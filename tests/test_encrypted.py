"""Tests for the DoT/DoH encrypted-transport model (Section 7)."""

import pytest

from repro.core import ExternalMachine, ResolverConfig, SimDriver, Status
from repro.dnslib import Message, RRType
from repro.ecosystem import EcosystemParams, build_internet
from repro.net import (
    CPUModel,
    EncryptedTransportParams,
    LatencyModel,
    ServerReply,
    SimEncryptedSocket,
    SimNetwork,
    Simulator,
    SourceIPPool,
)


class EchoServer:
    def handle_query(self, query, client_ip, now, protocol):
        assert protocol == "tcp"  # encrypted DNS rides a stream
        return ServerReply(query.make_response())


def build():
    sim = Simulator()
    network = SimNetwork(sim, wire_mode="never")
    network.register_server("10.0.0.1", EchoServer(), latency=LatencyModel(median=0.05, sigma=0.0))
    return sim, network


def one_query(sim, socket, txid=1, timeout=5.0):
    message = Message.make_query("x.com", RRType.A, txid=txid)

    def routine():
        return (yield socket.query("10.0.0.1", message, timeout))

    future = sim.spawn(routine())
    sim.run()
    return future.result()


class TestHandshakes:
    def test_first_query_pays_handshake_rtts(self):
        sim, network = build()
        socket = SimEncryptedSocket(network, SourceIPPool(), reuse_connections=True)
        response = one_query(sim, socket)
        assert response is not None
        # 2 handshake RTTs + 1 exchange RTT at 50ms each (plus timers drain)
        assert socket.handshakes == 1

    def test_reuse_skips_handshake(self):
        sim, network = build()
        socket = SimEncryptedSocket(network, SourceIPPool(), reuse_connections=True)
        for i in range(5):
            assert one_query(sim, socket, txid=i) is not None
        assert socket.handshakes == 1
        assert socket.queries == 5

    def test_no_reuse_pays_every_time(self):
        sim, network = build()
        socket = SimEncryptedSocket(network, SourceIPPool(), reuse_connections=False)
        for i in range(4):
            one_query(sim, socket, txid=i)
        assert socket.handshakes == 4

    def test_idle_timeout_reopens(self):
        sim, network = build()
        params = EncryptedTransportParams(idle_timeout=1.0)
        socket = SimEncryptedSocket(network, SourceIPPool(), params=params)
        one_query(sim, socket, txid=1)
        sim.call_later(5.0, lambda: None)
        sim.run()
        one_query(sim, socket, txid=2)
        assert socket.handshakes == 2

    def test_warm_channel_is_faster(self):
        sim, network = build()
        socket = SimEncryptedSocket(network, SourceIPPool())
        start = sim.now
        one_query(sim, socket, txid=1)
        # measure via fresh exchanges rather than the drained clock
        sim2, network2 = build()
        cold = SimEncryptedSocket(network2, SourceIPPool(), reuse_connections=False)
        message = Message.make_query("x.com", RRType.A, txid=9)
        times = {}

        def timed(tag, sock, net, simx):
            def routine():
                t0 = simx.now
                yield sock.query("10.0.0.1", message, 5.0)
                times[tag] = simx.now - t0

            simx.spawn(routine())
            simx.run()

        timed("cold", cold, network2, sim2)
        sim3, network3 = build()
        warm = SimEncryptedSocket(network3, SourceIPPool(), reuse_connections=True)

        def routine():
            yield warm.query("10.0.0.1", message, 5.0)
            t0 = sim3.now
            yield warm.query("10.0.0.1", message, 5.0)
            times["warm"] = sim3.now - t0

        sim3.spawn(routine())
        sim3.run()
        assert times["warm"] < times["cold"]

    def test_crypto_cpu_charged(self):
        sim, network = build()
        cpu = CPUModel(sim, cores=2)
        socket = SimEncryptedSocket(network, SourceIPPool(), cpu=cpu)
        one_query(sim, socket)
        params = EncryptedTransportParams.dot()
        assert cpu.busy_seconds == pytest.approx(params.handshake_cpu + params.per_query_cpu)

    def test_doh_costs_more_per_query_than_dot(self):
        assert (
            EncryptedTransportParams.doh().per_query_cpu
            > EncryptedTransportParams.dot().per_query_cpu
        )


class TestWithResolutionMachines:
    def test_external_lookup_over_dot(self):
        internet = build_internet(params=EcosystemParams(seed=44), wire_mode="never")
        socket = SimEncryptedSocket(internet.network, SourceIPPool())
        driver = SimDriver(internet.network)
        machine = ExternalMachine([internet.cloudflare_ip], ResolverConfig(retries=1))
        name = next(
            f"dot-{i}.com"
            for i in range(20_000)
            if internet.synth.profile(
                __import__("repro.dnslib", fromlist=["Name"]).Name.from_text(f"dot-{i}.com")
            ).exists
        )
        future = internet.sim.spawn(driver.execute(machine.resolve(name, RRType.A), socket))
        internet.sim.run()
        result = future.result()
        assert result.status == Status.NOERROR
