"""Tests for the drivers that execute resolution machines."""

import pytest

from repro.core import ClientCostModel, ResolverConfig, SelectiveCache, SimDriver, Status
from repro.core.machine import ExternalMachine, IterativeMachine, SendQuery
from repro.dnslib import Message, Name, RRType, get_edns
from repro.ecosystem import EcosystemParams, build_internet
from repro.net import CPUModel, GCModel, SimUDPSocket, SourceIPPool, Simulator


@pytest.fixture()
def internet():
    return build_internet(params=EcosystemParams(seed=55), wire_mode="never")


def existing_name(internet):
    synth = internet.synth
    for i in range(20_000):
        name = Name.from_text(f"engine-{i}.com")
        profile = synth.profile(name)
        if profile.exists and not profile.truncates and all(
            ns.drop_prob == 0 and not ns.lame for ns in profile.nameservers
        ):
            return name
    raise AssertionError("no clean domain found")


def run_lookup(internet, driver, machine_gen):
    socket = SimUDPSocket(internet.network, SourceIPPool())
    future = internet.sim.spawn(driver.execute(machine_gen, socket))
    internet.sim.run()
    return future.result()


class TestSimDriver:
    def test_lookup_without_cpu_model(self, internet):
        driver = SimDriver(internet.network)
        machine = ExternalMachine([internet.google_ip])
        result = run_lookup(internet, driver, machine.resolve(existing_name(internet), RRType.A))
        assert result.status == Status.NOERROR

    def test_cpu_charged_per_packet(self, internet):
        cpu = CPUModel(internet.sim, cores=4)
        driver = SimDriver(internet.network, cpu=cpu, costs=ClientCostModel())
        machine = ExternalMachine([internet.google_ip])
        run_lookup(internet, driver, machine.resolve(existing_name(internet), RRType.A))
        assert cpu.operations >= 2  # send + receive
        assert cpu.busy_seconds > 0

    def test_per_lookup_cost_charged_once(self, internet):
        cpu = CPUModel(internet.sim, cores=4)
        costs = ClientCostModel(per_send=0.0, per_receive=0.0, per_lookup=0.001)
        driver = SimDriver(internet.network, cpu=cpu, costs=costs)
        machine = ExternalMachine([internet.google_ip])
        run_lookup(internet, driver, machine.resolve(existing_name(internet), RRType.A))
        assert cpu.busy_seconds == pytest.approx(0.001)

    def test_socket_setup_cost_when_reuse_disabled(self, internet):
        cpu = CPUModel(internet.sim, cores=4)
        costs = ClientCostModel(per_send=0.0, per_receive=0.0, per_socket_setup=0.01)
        driver = SimDriver(internet.network, cpu=cpu, costs=costs, reuse_sockets=False)
        machine = ExternalMachine([internet.google_ip])
        result = run_lookup(internet, driver, machine.resolve(existing_name(internet), RRType.A))
        assert result.status == Status.NOERROR
        assert cpu.busy_seconds >= 0.01

    def test_edns_payload_attached(self, internet):
        captured = []

        class Spy:
            def handle_query(self, query, client_ip, now, protocol):
                captured.append(query)
                from repro.net import ServerReply

                return ServerReply(query.make_response())

        internet.network.register_server("10.99.0.1", Spy())
        driver = SimDriver(internet.network, edns_payload=1232)
        machine = ExternalMachine(["10.99.0.1"], ResolverConfig(retries=0))
        run_lookup(internet, driver, machine.resolve("x.com", RRType.A))
        info = get_edns(captured[0])
        assert info is not None and info.payload_size == 1232

    def test_edns_disabled(self, internet):
        captured = []

        class Spy:
            def handle_query(self, query, client_ip, now, protocol):
                captured.append(query)
                from repro.net import ServerReply

                return ServerReply(query.make_response())

        internet.network.register_server("10.99.0.2", Spy())
        driver = SimDriver(internet.network, edns_payload=None)
        machine = ExternalMachine(["10.99.0.2"], ResolverConfig(retries=0))
        run_lookup(internet, driver, machine.resolve("x.com", RRType.A))
        assert get_edns(captured[0]) is None

    def test_late_processing_counts_as_timeout(self, internet):
        """A response processed after its deadline (e.g. behind a long
        GC stall) must be treated as a timeout (Section 3.4)."""
        sim = internet.sim
        # pathological GC: every sliver of CPU work crosses a collection
        # boundary and eats a 5s stop-the-world pause
        cpu = CPUModel(sim, cores=1, gc=GCModel(period=0.0001, pause=5.0))
        driver = SimDriver(internet.network, cpu=cpu, costs=ClientCostModel())
        machine = ExternalMachine([internet.google_ip], ResolverConfig(retries=0))
        result = run_lookup(internet, driver, machine.resolve(existing_name(internet), RRType.A))
        assert result.status == Status.TIMEOUT

    def test_iterative_machine_through_driver(self, internet):
        driver = SimDriver(internet.network)
        machine = IterativeMachine(
            SelectiveCache(capacity=1000), internet.root_ips, ResolverConfig()
        )
        result = run_lookup(internet, driver, machine.resolve(existing_name(internet), RRType.A))
        assert result.status == Status.NOERROR
        assert result.queries_sent >= 3


class TestTimeoutBoundaryInstant:
    """Regression: what happens *exactly* at ``sent_at + timeout``.

    Two layers can observe the deadline.  At the socket layer,
    ``timeout_race`` schedules the timeout timer at send time, so when a
    delivery lands at the exact deadline instant the timer (earlier
    sequence number) fires first and the exchange resolves to ``None``.
    The engine's late-reply check — a reply that arrived in time but
    whose processing (CPU receive cost, GC stalls) finished late — must
    agree with that tie-break: the deadline instant itself counts as a
    timeout, for UDP and TCP alike.  These tests pin both layers at the
    exact instant with FP-exact binary fractions.
    """

    def _socket_level(self, protocol, median, timeout=3.0):
        from repro.net import LatencyModel, ServerReply, SimNetwork

        sim = Simulator()
        network = SimNetwork(sim, seed=0, wire_mode="never")

        class Echo:
            def handle_query(self, query, client_ip, now, proto):
                return ServerReply(query.make_response(authoritative=True))

        # sigma=0 makes the log-normal degenerate: rtt == median exactly
        network.register_server(
            "10.0.0.1", Echo(), latency=LatencyModel(median=median, sigma=0.0)
        )
        message = Message.make_query("boundary.test", RRType.A, txid=7)
        if protocol == "tcp":
            future = network.query_tcp("198.18.0.0", "10.0.0.1", message, timeout)
        else:
            future = network.query_udp("198.18.0.0", "10.0.0.1", message, timeout)
        sim.run()
        return future.result()

    def test_udp_delivery_at_exact_deadline_times_out(self):
        # rtt == timeout: the reply lands at sent_at + timeout exactly,
        # the same instant the timer fires; the timer wins the tie.
        assert self._socket_level("udp", median=3.0) is None

    def test_udp_delivery_just_inside_deadline_wins(self):
        assert self._socket_level("udp", median=2.5) is not None

    def test_tcp_delivery_at_exact_deadline_times_out(self):
        # TCP doubles the rtt (one handshake round trip), so a median of
        # timeout/2 lands the reply exactly on the deadline.
        assert self._socket_level("tcp", median=1.5) is None

    def test_tcp_delivery_just_inside_deadline_wins(self):
        assert self._socket_level("tcp", median=1.25) is not None

    def _engine_level(self, protocol, median, per_receive, timeout=1.0):
        from repro.net import LatencyModel, ServerReply, SimNetwork

        sim = Simulator()
        network = SimNetwork(sim, seed=0, wire_mode="never")

        class Echo:
            def handle_query(self, query, client_ip, now, proto):
                return ServerReply(query.make_response(authoritative=True))

        network.register_server(
            "10.0.0.1", Echo(), latency=LatencyModel(median=median, sigma=0.0)
        )
        cpu = CPUModel(sim, cores=1)
        costs = ClientCostModel(per_send=0.0, per_receive=per_receive, per_lookup=0.0)
        driver = SimDriver(network, cpu=cpu, costs=costs)

        def machine():
            response = yield SendQuery(
                server_ip="10.0.0.1",
                name=Name.from_text("boundary.test"),
                qtype=RRType.A,
                timeout=timeout,
                protocol=protocol,
            )
            return response

        socket = SimUDPSocket(network, SourceIPPool())
        future = sim.spawn(driver.execute(machine(), socket))
        sim.run()
        return future.result()

    def test_udp_processing_at_exact_deadline_is_dropped(self):
        # Reply delivered at 0.75, receive cost pushes processing to
        # exactly sent_at + 1.0: the engine must agree with the socket
        # race and report a timeout.  All values are exact binary
        # fractions, so there is no FP wiggle to hide behind.
        assert self._engine_level("udp", median=0.75, per_receive=0.25) is None

    def test_udp_processing_just_inside_deadline_kept(self):
        assert self._engine_level("udp", median=0.75, per_receive=0.125) is not None

    def test_tcp_processing_at_exact_deadline_is_dropped(self):
        # TCP rtt doubles: median 0.375 delivers at 0.75, as above.
        assert self._engine_level("tcp", median=0.375, per_receive=0.25) is None

    def test_tcp_processing_just_inside_deadline_kept(self):
        assert self._engine_level("tcp", median=0.375, per_receive=0.125) is not None
