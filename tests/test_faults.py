"""Unit tests for the fault-injection subsystem (repro.faults), the
per-server health tracker, and retry backoff — the tier-1 slice of the
chaos harness (the long soak lives in tests/soak/)."""

import json
import random

import pytest

from repro.core import (
    Backoff,
    ExternalMachine,
    ResolverConfig,
    SendQuery,
    ServerHealthTracker,
    Status,
)
from repro.core.validation import validate_response_shape
from repro.dnslib import Message, Name, RRType
from repro.faults import (
    Blackout,
    Brownout,
    BurstLoss,
    FaultInjector,
    FaultPlan,
    Flap,
    Garbage,
    LatencySpike,
    Loss,
    PlanError,
    RcodeStorm,
    Truncate,
    directive_from_json,
    escalation_ladder,
    plan_by_name,
)
from repro.net import GilbertElliottLoss, HangError, Simulator
from repro.net.links import LossModel


class FakeSim:
    """Minimal clock stand-in for driving the injector by hand."""

    def __init__(self, now=0.0):
        self.now = now


def make_query(name="www.example.com", qtype=RRType.A, txid=7):
    return Message.make_query(Name.from_text(name), qtype, txid=txid)


def make_response(query):
    response = Message.make_query(
        query.question.name, query.question.rrtype, txid=query.id
    )
    from repro.dnslib import Flags

    response.flags = Flags(response=True)
    return response


class TestPlanParsing:
    def test_roundtrip(self):
        plan = FaultPlan(
            [
                Blackout(servers=("10.0.0.1",), start=5, end=25),
                RcodeStorm(servers=("10.1.",), rcode="REFUSED", probability=0.6),
                BurstLoss(p_enter=0.02, p_exit=0.2, loss_bad=0.9),
            ],
            name="rt",
        )
        again = FaultPlan.from_json(json.loads(json.dumps(plan.to_json())))
        assert again.to_json() == plan.to_json()
        assert len(again) == 3 and bool(again)

    def test_unknown_kind_rejected(self):
        with pytest.raises(PlanError, match="unknown directive kind"):
            directive_from_json({"kind": "meteor_strike"})

    def test_unknown_field_rejected(self):
        with pytest.raises(PlanError, match="unknown field"):
            directive_from_json({"kind": "loss", "probabilty": 0.1})

    def test_bad_probability_rejected(self):
        with pytest.raises(PlanError):
            directive_from_json({"kind": "loss", "probability": 1.5})
        with pytest.raises(PlanError):
            Truncate(probability=-0.1)

    def test_bad_window_rejected(self):
        with pytest.raises(PlanError, match="bad window"):
            Blackout(start=10.0, end=5.0)

    def test_servers_string_coerced(self):
        directive = directive_from_json({"kind": "blackout", "servers": "10.0.0.1"})
        assert directive.servers == ("10.0.0.1",)

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({"name": "f", "directives": [{"kind": "blackout"}]}))
        plan = FaultPlan.load(str(path))
        assert plan.name == "f" and isinstance(plan.directives[0], Blackout)

    def test_load_bad_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(PlanError, match="invalid JSON"):
            FaultPlan.load(str(path))

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan.empty()
        assert len(FaultPlan.empty()) == 0

    def test_bundled_plans(self):
        ladder = escalation_ladder()
        assert [bool(plan) for plan in ladder] == [False, True, True, True, True]
        assert plan_by_name("severe")
        with pytest.raises(KeyError):
            plan_by_name("apocalyptic")


class TestLossModels:
    def test_round_trip_probability(self):
        model = LossModel(0.1)
        assert model.round_trip_probability == pytest.approx(1 - 0.9**2)

    def test_for_round_trip_inverts(self):
        for target in (0.0, 0.05, 0.3, 0.75):
            model = LossModel.for_round_trip(target)
            assert model.round_trip_probability == pytest.approx(target)

    def test_for_round_trip_validates(self):
        with pytest.raises(ValueError):
            LossModel.for_round_trip(1.0)

    def test_gilbert_elliott_edge_rates(self):
        rng = random.Random(1)
        never = GilbertElliottLoss(p_enter=0.0, p_exit=1.0, loss_good=0.0)
        assert not any(never.dropped(rng) for _ in range(200))
        stuck = GilbertElliottLoss(
            p_enter=1.0, p_exit=0.0, loss_good=0.0, loss_bad=1.0
        )
        assert all(stuck.dropped(rng) for _ in range(200))

    def test_gilbert_elliott_validates(self):
        with pytest.raises(ValueError):
            GilbertElliottLoss(p_enter=1.5, p_exit=0.5)


class TestInjectorHooks:
    def test_empty_plan_never_touches_rng(self):
        injector = FaultInjector(FaultPlan.empty(), sim=FakeSim(), seed=3)
        state = injector.rng.getstate()
        query = make_query()
        assert injector.on_send("10.0.0.1", "udp") is None
        assert injector.at_server("10.0.0.1", "udp", query) is None
        response = make_response(query)
        assert injector.on_reply("10.0.0.1", "udp", query, response) is response
        assert injector.rng.getstate() == state
        assert injector.total_activations() == 0

    def test_nonmatching_directive_untouched_rng(self):
        plan = FaultPlan([Loss(probability=0.9, servers=("10.9.",))])
        injector = FaultInjector(plan, sim=FakeSim(), seed=3)
        state = injector.rng.getstate()
        assert injector.on_send("10.0.0.1", "udp") is None
        assert injector.rng.getstate() == state

    def test_blackout_targeting_and_window(self):
        plan = FaultPlan(
            [
                Blackout(servers=("192.7.",)),
                Blackout(servers=("1.1.1.1",), start=5.0, end=9.0),
            ]
        )
        sim = FakeSim()
        injector = FaultInjector(plan, sim=sim, seed=0)
        assert injector.on_send("192.7.3.4", "udp").drop
        assert injector.on_send("192.8.0.1", "udp") is None
        assert injector.on_send("1.1.1.1", "udp") is None
        sim.now = 7.0
        assert injector.on_send("1.1.1.1", "udp").drop
        sim.now = 9.0
        assert injector.on_send("1.1.1.1", "udp") is None
        assert injector.counts["blackout_0"] == 1
        assert injector.counts["blackout_1"] == 1

    def test_flap_phase(self):
        plan = FaultPlan([Flap(period=10.0, up_fraction=0.5)])
        sim = FakeSim()
        injector = FaultInjector(plan, sim=sim, seed=0)
        sim.now = 2.0  # up phase
        assert injector.on_send("10.0.0.1", "udp") is None
        sim.now = 7.0  # down phase
        assert injector.on_send("10.0.0.1", "udp").drop
        sim.now = 12.0  # next period, up again
        assert injector.on_send("10.0.0.1", "udp") is None

    def test_rcode_storm_synthesises_reply(self):
        plan = FaultPlan([RcodeStorm(rcode="SERVFAIL")])
        injector = FaultInjector(plan, sim=FakeSim(), seed=0)
        query = make_query()
        reply = injector.at_server("10.0.0.1", "udp", query)
        assert reply is not None and reply.id == query.id
        assert int(reply.flags.rcode) == 2  # SERVFAIL
        assert reply.flags.response
        # shape-valid: the machine processes it as a real SERVFAIL
        assert validate_response_shape(query.question.name, RRType.A, reply) is None

    def test_truncate_udp_only(self):
        plan = FaultPlan([Truncate()])
        injector = FaultInjector(plan, sim=FakeSim(), seed=0)
        query = make_query()
        udp = injector.on_reply("10.0.0.1", "udp", query, make_response(query))
        assert udp.flags.truncated
        tcp = injector.on_reply("10.0.0.1", "tcp", query, make_response(query))
        assert not tcp.flags.truncated

    def test_garbage_fails_validation(self):
        plan = FaultPlan([Garbage()])
        injector = FaultInjector(plan, sim=FakeSim(), seed=0)
        query = make_query()
        for _ in range(8):
            reply = injector.on_reply("10.0.0.1", "udp", query, make_response(query))
            reason = validate_response_shape(query.question.name, RRType.A, reply)
            assert reason is not None

    def test_latency_spike_and_brownout_verdict(self):
        plan = FaultPlan(
            [
                LatencySpike(extra=0.25, factor=2.0),
                Brownout(probability=0.0, latency_factor=3.0),
            ]
        )
        injector = FaultInjector(plan, sim=FakeSim(), seed=0)
        verdict = injector.on_send("10.0.0.1", "udp")
        assert verdict is not None and not verdict.drop
        assert verdict.extra_delay == pytest.approx(0.25)
        assert verdict.latency_factor == pytest.approx(6.0)

    def test_burst_loss_uses_per_server_chains(self):
        plan = FaultPlan([BurstLoss(p_enter=1.0, p_exit=0.0, loss_bad=1.0)])
        injector = FaultInjector(plan, sim=FakeSim(), seed=0)
        assert injector.on_send("10.0.0.1", "udp").drop
        assert injector.on_send("10.0.0.2", "udp").drop
        assert len(injector._chains) == 2

    def test_determinism_same_seed(self):
        plan = FaultPlan([Loss(probability=0.5)])

        def run(seed):
            injector = FaultInjector(plan, sim=FakeSim(), seed=seed)
            return [
                injector.on_send("10.0.0.1", "udp") is not None for _ in range(64)
            ], injector.counts

        assert run(5) == run(5)
        assert run(5) != run(6)

    def test_attach_and_metrics(self):
        from repro.obs import MetricsRegistry

        class _Net:
            fault_injector = None

        network = _Net()
        plan = FaultPlan([Blackout()])
        injector = FaultInjector(plan, sim=FakeSim(), seed=0).attach(network)
        assert network.fault_injector is injector
        injector.on_send("10.0.0.1", "udp")
        registry = MetricsRegistry(enabled=True)
        injector.publish_metrics(registry.scope("faults"))
        snapshot = registry.snapshot()
        assert snapshot["faults.blackout_0"] == 1
        assert snapshot["faults.total_activations"] == 1
        assert snapshot["faults.directives"] == 1


class TestServerHealthTracker:
    def test_failures_accumulate_and_decay(self):
        clock = FakeSim()
        tracker = ServerHealthTracker(clock=lambda: clock.now, half_life=10.0)
        tracker.record_failure("10.0.0.1")
        tracker.record_failure("10.0.0.1")
        assert tracker.score("10.0.0.1") == pytest.approx(2.0)
        clock.now = 10.0
        assert tracker.score("10.0.0.1") == pytest.approx(1.0)

    def test_success_credits(self):
        clock = FakeSim()
        tracker = ServerHealthTracker(clock=lambda: clock.now, success_credit=0.5)
        tracker.record_failure("10.0.0.1")
        tracker.record_success("10.0.0.1")
        assert tracker.score("10.0.0.1") == pytest.approx(0.5)
        tracker.record_success("10.0.0.1")
        assert tracker.score("10.0.0.1") == 0.0

    def test_order_sheds_unhealthy_servers_last(self):
        clock = FakeSim()
        tracker = ServerHealthTracker(
            clock=lambda: clock.now, shed_threshold=2.0
        )
        for _ in range(5):
            tracker.record_failure("10.0.0.2")
        assert tracker.is_shed("10.0.0.2")
        servers = ["10.0.0.1", "10.0.0.2", "10.0.0.3"]
        for seed in range(10):
            ordered = tracker.order(list(servers), random.Random(seed))
            assert sorted(ordered) == sorted(servers)  # nothing removed
            assert ordered[-1] == "10.0.0.2"

    def test_order_healthy_keeps_shuffle(self):
        tracker = ServerHealthTracker(clock=lambda: 0.0)
        servers = [f"10.0.0.{i}" for i in range(6)]
        shuffled = list(servers)
        random.Random(3).shuffle(shuffled)
        assert tracker.order(list(servers), random.Random(3)) == shuffled


def drive_with_backoff(gen, responder):
    """Like test_machine.drive but collects Backoff effects."""
    pauses = []
    try:
        effect = next(gen)
        while True:
            if isinstance(effect, Backoff):
                pauses.append(effect.delay)
                effect = gen.send(None)
                continue
            assert isinstance(effect, SendQuery)
            effect = gen.send(responder(effect))
    except StopIteration as stop:
        return stop.value, pauses


class TestBackoff:
    def test_disabled_by_default(self):
        gen = ExternalMachine(["8.8.8.8"], ResolverConfig(retries=2)).resolve(
            "x.com", RRType.A
        )
        result, pauses = drive_with_backoff(gen, lambda effect: None)
        assert result.status == Status.TIMEOUT
        assert pauses == []

    def test_pauses_between_retries(self):
        config = ResolverConfig(retries=3, backoff_base=0.1, backoff_cap=0.5)
        gen = ExternalMachine(["8.8.8.8"], config, random.Random(1)).resolve(
            "x.com", RRType.A
        )
        result, pauses = drive_with_backoff(gen, lambda effect: None)
        assert result.status == Status.TIMEOUT
        # a pause before every retry, none after the final attempt
        assert len(pauses) == 3
        assert all(0.1 <= pause <= 0.5 for pause in pauses)

    def test_deterministic_given_seed(self):
        def run():
            config = ResolverConfig(retries=3, backoff_base=0.1)
            gen = ExternalMachine(["8.8.8.8"], config, random.Random(9)).resolve(
                "x.com", RRType.A
            )
            return drive_with_backoff(gen, lambda effect: None)[1]

        assert run() == run()


class TestHangDetection:
    def test_bounded_run_raises(self):
        sim = Simulator()

        def forever():
            while True:
                yield 1.0

        sim.spawn(forever())
        with pytest.raises(HangError, match="still busy"):
            sim.run(max_events=100)

    def test_bounded_run_completes_normally(self):
        sim = Simulator()
        ticks = []

        def three():
            for _ in range(3):
                yield 1.0
                ticks.append(sim.now)

        sim.spawn(three())
        sim.run(max_events=100)
        assert ticks == [1.0, 2.0, 3.0]


class TestScanIntegration:
    def _scan(self, plan, seed=13, count=60):
        from repro.ecosystem import EcosystemParams, build_internet
        from repro.framework import ScanConfig, ScanRunner
        from repro.workloads import CorpusConfig, DomainCorpus

        internet = build_internet(params=EcosystemParams(seed=seed))
        injector = None
        if plan is not None:
            injector = FaultInjector(plan, sim=internet.sim, seed=seed)
            injector.attach(internet.network)
        rows = []
        config = ScanConfig(threads=20, seed=seed, server_health=True,
                            backoff_base=0.05)
        names = DomainCorpus(CorpusConfig(seed=seed)).fqdns(count)
        report = ScanRunner(internet, config, sink=rows.append).run(names)
        return rows, report, injector

    def test_chaos_smoke_terminates_classified(self):
        rows, report, injector = self._scan(plan_by_name("severe"))
        assert report.stats.total == 60
        assert sum(report.stats.by_status.values()) == 60
        assert all("status" in row for row in rows)
        assert injector.total_activations() > 0

    def test_empty_plan_equivalent_with_hardening_on(self):
        rows_a, report_a, _ = self._scan(None)
        rows_b, report_b, injector = self._scan(FaultPlan.empty())
        assert rows_a == rows_b
        assert report_a.stats.duration == report_b.stats.duration
        assert injector.total_activations() == 0
