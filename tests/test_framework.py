"""Tests for the scan framework: runner, stats, IO, CLI."""

import io
import json

import pytest

from repro.ecosystem import EcosystemParams, build_internet
from repro.framework import (
    JsonLineSink,
    ScanConfig,
    ScanRunner,
    ScanStats,
    clean_row,
    read_names,
    run_scan,
    write_rows,
)
from repro.framework.cli import build_parser, main
from repro.workloads import CorpusConfig, DomainCorpus


@pytest.fixture()
def internet():
    return build_internet(params=EcosystemParams(seed=42), wire_mode="sampled")


@pytest.fixture(scope="module")
def corpus():
    return DomainCorpus(CorpusConfig(seed=42))


class TestScanStats:
    def test_record_accumulates(self):
        stats = ScanStats()
        stats.record("NOERROR", 1.0, queries=2)
        stats.record("NXDOMAIN", 2.0, queries=1)
        stats.record("TIMEOUT", 3.0, queries=3, retries=2)
        assert stats.total == 3
        assert stats.successes == 2  # NXDOMAIN counts (Section 4.1)
        assert stats.success_rate == pytest.approx(2 / 3)
        assert stats.queries_sent == 6
        assert stats.retries_used == 2
        assert stats.duration == 3.0

    def test_rates(self):
        stats = ScanStats()
        for i in range(10):
            stats.record("NOERROR", (i + 1) * 0.5)
        assert stats.lookups_per_second == pytest.approx(2.0)
        assert stats.successes_per_second == pytest.approx(2.0)

    def test_steady_rate_ignores_straggler(self):
        stats = ScanStats()
        for i in range(99):
            stats.record("NOERROR", (i + 1) * 0.1)
        stats.record("NOERROR", 60.0)  # one straggler
        assert stats.lookups_per_second < 2
        assert stats.steady_rate == pytest.approx(10.0, rel=0.3)

    def test_empty_stats(self):
        stats = ScanStats()
        assert stats.success_rate == 0.0
        assert stats.successes_per_second == 0.0
        assert stats.steady_rate == 0.0

    def test_steady_rate_zero_duration_burst(self):
        # every completion at one instant: p10 == p90, duration == 0 —
        # must not divide by zero, falls back to lookups_per_second (0.0)
        stats = ScanStats()
        for _ in range(50):
            stats.record("NOERROR", 0.0)
        assert stats.steady_rate == 0.0
        assert stats.lookups_per_second == 0.0

    def test_steady_rate_identical_percentiles_nonzero_duration(self):
        # 10th..90th percentile completions coincide but the scan has
        # real duration: fall back to the overall rate, not a crash
        stats = ScanStats()
        stats.record("NOERROR", 0.0)
        for _ in range(20):
            stats.record("NOERROR", 5.0)
        assert stats.steady_rate == pytest.approx(stats.lookups_per_second)

    def test_steady_rate_few_completions(self):
        stats = ScanStats()
        for i in range(5):
            stats.record("NOERROR", (i + 1) * 1.0)
        assert stats.steady_rate == pytest.approx(stats.lookups_per_second)

    def test_json_shape(self):
        stats = ScanStats()
        stats.record("NOERROR", 1.0)
        data = stats.to_json()
        assert data["total"] == 1
        assert "statuses" in data


class TestIO:
    def test_read_names_skips_blank_and_comments(self, tmp_path):
        path = tmp_path / "names.txt"
        path.write_text("a.com\n\n# comment\nb.com \n")
        assert list(read_names(str(path))) == ["a.com", "b.com"]

    def test_read_names_from_handle(self):
        handle = io.StringIO("x.com\ny.com\n")
        assert list(read_names(handle)) == ["x.com", "y.com"]

    def test_clean_row_strips_private_keys(self):
        assert clean_row({"a": 1, "_internal": 2}) == {"a": 1}

    def test_write_rows(self, tmp_path):
        path = tmp_path / "out.jsonl"
        count = write_rows([{"name": "a"}, {"name": "b", "_x": 1}], str(path))
        assert count == 2
        lines = path.read_text().splitlines()
        assert json.loads(lines[1]) == {"name": "b"}

    def test_sink_counts(self):
        buffer = io.StringIO()
        sink = JsonLineSink(buffer)
        sink({"name": "a"})
        sink({"name": "b"})
        assert sink.count == 2
        assert len(buffer.getvalue().splitlines()) == 2


class TestScanRunner:
    def test_basic_scan_collects_rows(self, internet, corpus):
        rows = []
        config = ScanConfig(module="A", mode="google", threads=50, seed=1)
        report = ScanRunner(internet, config, sink=rows.append).run(corpus.fqdns(300))
        assert report.stats.total == 300
        assert len(rows) == 300
        assert report.stats.success_rate > 0.9
        assert report.stats.threads_running == 50

    def test_iterative_scan_builds_cache(self, internet, corpus):
        config = ScanConfig(module="A", mode="iterative", threads=50, seed=1)
        runner = ScanRunner(internet, config)
        report = runner.run(corpus.fqdns(200))
        assert report.cache_stats is not None
        assert report.cache_stats["hits"] > 0
        assert report.stats.success_rate > 0.9

    def test_external_scan_has_no_cache(self, internet, corpus):
        config = ScanConfig(module="A", mode="cloudflare", threads=20, seed=1)
        report = ScanRunner(internet, config).run(corpus.fqdns(50))
        assert report.cache_stats is None

    def test_thread_cap_by_ports(self, internet, corpus):
        config = ScanConfig(
            module="A", mode="google", threads=100, ports_per_ip=30, source_prefix=32, seed=1
        )
        report = ScanRunner(internet, config).run(corpus.fqdns(60))
        assert report.stats.threads_running == 30
        assert report.stats.total == 60  # capped threads still finish the work

    def test_external_mode_requires_ips(self, internet):
        config = ScanConfig(module="A", mode="external", threads=10)
        with pytest.raises(ValueError):
            ScanRunner(internet, config).run(["a.com"])

    def test_run_scan_convenience(self, internet, corpus):
        report = run_scan(internet, corpus.fqdns(50), module="A", mode="google", threads=10, seed=1)
        assert report.stats.total == 50

    def test_run_scan_rejects_config_plus_overrides(self, internet):
        with pytest.raises(ValueError):
            run_scan(internet, ["a.com"], config=ScanConfig(), threads=5)

    def test_gc_model_applies(self, internet, corpus):
        config = ScanConfig(
            module="A", mode="google", threads=20, gc_period=0.5, gc_pause=0.02, seed=1
        )
        report = ScanRunner(internet, config).run(corpus.fqdns(100))
        assert report.stats.total == 100

    def test_deterministic_given_seed(self, corpus):
        def run():
            internet = build_internet(params=EcosystemParams(seed=42), wire_mode="never")
            config = ScanConfig(module="A", mode="google", threads=30, seed=9)
            report = ScanRunner(internet, config).run(corpus.fqdns(200))
            return report.stats.to_json()

        first = run()
        second = run()
        first.pop("duration_s"), second.pop("duration_s")
        assert first["statuses"] == second["statuses"]

    def test_mxlookup_module_through_runner(self, internet, corpus):
        rows = []
        config = ScanConfig(module="MXLOOKUP", mode="iterative", threads=30, seed=1)
        ScanRunner(internet, config, sink=rows.append).run(corpus.fqdns(100))
        assert any(row["data"]["exchanges"] for row in rows)


class TestCLI:
    def test_parser_module_choices(self):
        parser = build_parser()
        args = parser.parse_args(["A", "--threads", "10"])
        assert args.module == "A"
        assert args.threads == 10

    def test_end_to_end_scan(self, tmp_path, corpus, capsys):
        infile = tmp_path / "in.txt"
        outfile = tmp_path / "out.jsonl"
        infile.write_text("\n".join(corpus.fqdns(40)))
        code = main([
            "A", "-f", str(infile), "-o", str(outfile),
            "--mode", "google", "--threads", "10", "--seed", "4",
        ])
        assert code == 0
        rows = [json.loads(line) for line in outfile.read_text().splitlines()]
        assert len(rows) == 40
        assert all("status" in row for row in rows)
        summary = json.loads(capsys.readouterr().err.strip())
        assert summary["total"] == 40

    def test_unknown_module_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["BOGUS", "-f", "/dev/null"])

    def test_trace_flag_includes_chain(self, tmp_path, corpus):
        infile = tmp_path / "in.txt"
        outfile = tmp_path / "out.jsonl"
        infile.write_text("\n".join(corpus.fqdns(10)))
        main([
            "A", "-f", str(infile), "-o", str(outfile),
            "--mode", "iterative", "--threads", "5", "--trace", "--quiet", "--seed", "4",
        ])
        rows = [json.loads(line) for line in outfile.read_text().splitlines()]
        traced = [row for row in rows if "trace" in row]
        assert traced
        step = traced[0]["trace"][0]
        assert {"name", "layer", "depth", "name_server", "cached", "try"} <= set(step)


class TestLiveCLI:
    def test_live_mode_over_loopback(self, tmp_path):
        from repro.dnslib import Message, Name, Rcode, ResourceRecord, RRType
        from repro.dnslib.rdata.address import A as ARecord
        from repro.net import UDPServer

        def handler(query, client):
            response = query.make_response(authoritative=True)
            response.answers.append(
                ResourceRecord(query.question.name, RRType.A, 1, 60, ARecord("127.0.0.9"))
            )
            return response

        infile = tmp_path / "in.txt"
        outfile = tmp_path / "out.jsonl"
        infile.write_text("one.test\ntwo.test\n")
        with UDPServer(handler) as server:
            host, port = server.address
            code = main([
                "A", "-f", str(infile), "-o", str(outfile),
                "--live-resolver", f"{host}:{port}", "--quiet",
            ])
        assert code == 0
        rows = [json.loads(line) for line in outfile.read_text().splitlines()]
        assert len(rows) == 2
        assert rows[0]["status"] == "NOERROR"
        assert rows[0]["data"]["answers"][0]["answer"] == "127.0.0.9"


class TestTimestamps:
    def test_sink_timestamp(self):
        import re

        buffer = io.StringIO()
        sink = JsonLineSink(buffer, add_timestamp=True)
        sink({"name": "a"})
        row = json.loads(buffer.getvalue())
        assert re.fullmatch(r"\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}Z", row["timestamp"])


class TestSharding:
    def test_shards_partition_input(self):
        from repro.framework import shard

        names = [f"n{i}.com" for i in range(10)]
        parts = [list(shard(names, 3, i)) for i in range(3)]
        assert sorted(sum(parts, [])) == sorted(names)
        assert not (set(parts[0]) & set(parts[1]))

    def test_single_shard_is_identity(self):
        from repro.framework import shard

        assert list(shard(["a", "b"], 1, 0)) == ["a", "b"]

    def test_bad_indices_rejected(self):
        from repro.framework import shard

        with pytest.raises(ValueError):
            list(shard([], 0, 0))
        with pytest.raises(ValueError):
            list(shard([], 2, 2))


class TestTimeline:
    def test_buckets(self):
        stats = ScanStats()
        for t in (0.1, 0.2, 1.5, 2.9):
            stats.record("NOERROR", t)
        assert stats.timeline(1.0) == [(0.0, 2), (1.0, 1), (2.0, 1)]

    def test_bad_bucket(self):
        with pytest.raises(ValueError):
            ScanStats().timeline(0)
        with pytest.raises(ValueError):
            ScanStats().timeline(-1.0)

    def test_empty_timeline(self):
        assert ScanStats().timeline(1.0) == []
        assert ScanStats().timeline(1.0, fill=True) == []

    def test_fill_emits_zero_buckets(self):
        stats = ScanStats()
        for t in (0.1, 3.5):
            stats.record("NOERROR", t)
        assert stats.timeline(1.0) == [(0.0, 1), (3.0, 1)]
        assert stats.timeline(1.0, fill=True) == [
            (0.0, 1), (1.0, 0), (2.0, 0), (3.0, 1),
        ]

    def test_fractional_bucket(self):
        stats = ScanStats()
        for t in (0.1, 0.2, 0.6):
            stats.record("NOERROR", t)
        assert stats.timeline(0.5) == [(0.0, 2), (0.5, 1)]
