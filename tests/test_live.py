"""Tests for the real-socket transport over loopback."""

from repro.dnslib import Message, Name, Rcode, ResourceRecord, RRType
from repro.dnslib.rdata.address import A
from repro.net import UDPServer, UDPTransport


def simple_handler(query, client):
    response = query.make_response(authoritative=True)
    if query.question.name == Name.from_text("known.test"):
        response.answers.append(
            ResourceRecord(query.question.name, RRType.A, 1, 60, A("127.1.2.3"))
        )
        return response
    return query.make_response(rcode=Rcode.NXDOMAIN)


def test_roundtrip_over_loopback():
    with UDPServer(simple_handler) as server:
        with UDPTransport() as transport:
            query = Message.make_query("known.test", RRType.A, txid=4321)
            response = transport.query(query, server.address, timeout=2.0)
    assert response is not None
    assert response.id == 4321
    assert response.answers[0].rdata == A("127.1.2.3")


def test_nxdomain_over_loopback():
    with UDPServer(simple_handler) as server:
        with UDPTransport() as transport:
            query = Message.make_query("missing.test", RRType.A, txid=1)
            response = transport.query(query, server.address, timeout=2.0)
    assert response.rcode == Rcode.NXDOMAIN


def test_timeout_when_server_silent():
    def drop_handler(query, client):
        return None

    with UDPServer(drop_handler) as server:
        with UDPTransport() as transport:
            query = Message.make_query("any.test", RRType.A)
            response = transport.query(query, server.address, timeout=0.3)
    assert response is None


def test_mismatched_txid_is_ignored():
    def wrong_id_handler(query, client):
        response = query.make_response()
        response.id = (query.id + 1) & 0xFFFF
        return response

    with UDPServer(wrong_id_handler) as server:
        with UDPTransport() as transport:
            query = Message.make_query("any.test", RRType.A, txid=500)
            response = transport.query(query, server.address, timeout=0.3)
    assert response is None  # the spoofed-id packet must not match


def test_transport_reuses_one_socket():
    with UDPServer(simple_handler) as server:
        with UDPTransport() as transport:
            bound = transport.bound_address
            for i in range(5):
                query = Message.make_query("known.test", RRType.A, txid=i)
                assert transport.query(query, server.address, timeout=2.0) is not None
            assert transport.bound_address == bound
