"""Unit tests for the sans-IO resolution machines, driven by scripted
responses (no network, simulated or otherwise)."""

import random

import pytest

from repro.core import (
    Delegation,
    ExternalMachine,
    IterativeMachine,
    ResolverConfig,
    SelectiveCache,
    SendQuery,
    Status,
)
from repro.dnslib import (
    DNSClass,
    Flags,
    Message,
    Name,
    Question,
    Rcode,
    ResourceRecord,
    RRType,
)
from repro.dnslib.rdata.address import A
from repro.dnslib.rdata.names import CNAME, NS

N = Name.from_text
ROOTS = ["199.0.0.1", "199.0.0.2"]


def rr(name, rrtype, rdata, ttl=300):
    return ResourceRecord(N(name), rrtype, DNSClass.IN, ttl, rdata)


def answer_msg(qname, records, rcode=Rcode.NOERROR, authoritative=True, truncated=False):
    msg = Message(
        flags=Flags(response=True, authoritative=authoritative, rcode=rcode, truncated=truncated)
    )
    msg.answers = list(records)
    return msg


def referral_msg(zone, ns_ips):
    msg = Message(flags=Flags(response=True))
    for i, ip in enumerate(ns_ips):
        ns_name = f"ns{i + 1}.{zone}"
        msg.authorities.append(rr(zone, RRType.NS, NS(N(ns_name))))
        if ip is not None:
            msg.additionals.append(rr(ns_name, RRType.A, A(ip)))
    return msg


def drive(gen, responder):
    """Run a machine generator against a responder(effect) callable."""
    try:
        effect = next(gen)
        while True:
            assert isinstance(effect, SendQuery)
            effect = gen.send(responder(effect))
    except StopIteration as stop:
        return stop.value


def machine(cache=None, config=None, seed=0):
    # NB: "cache or ..." would discard an *empty* cache (it has __len__)
    return IterativeMachine(
        cache if cache is not None else SelectiveCache(capacity=1000),
        ROOTS,
        config or ResolverConfig(retries=1),
        random.Random(seed),
    )


class ScriptedInternet:
    """Routes effects to per-server responders and logs every query."""

    def __init__(self):
        self.servers = {}
        self.log = []

    def add(self, ip, fn):
        self.servers[ip] = fn

    def __call__(self, effect):
        self.log.append((effect.server_ip, effect.name.to_text(), int(effect.qtype), effect.protocol))
        handler = self.servers.get(effect.server_ip)
        return handler(effect) if handler else None


def standard_tree(final_records=None, rcode=Rcode.NOERROR):
    """root -> com -> example.com serving ``final_records``."""
    net = ScriptedInternet()
    for ip in ROOTS:
        net.add(ip, lambda e: referral_msg("com", ["10.0.0.1"]))
    net.add(10 * "", lambda e: None)
    net.add("10.0.0.1", lambda e: referral_msg("example.com", ["10.1.0.1"]))
    records = final_records if final_records is not None else [
        rr("www.example.com", RRType.A, A("93.0.0.1"))
    ]
    net.add("10.1.0.1", lambda e: answer_msg(e.name.to_text(), records, rcode=rcode))
    return net


class TestIterativeWalk:
    def test_full_walk_from_root(self):
        net = standard_tree()
        result = drive(machine().resolve("www.example.com", RRType.A), net)
        assert result.status == Status.NOERROR
        assert result.answers[0].rdata == A("93.0.0.1")
        assert result.queries_sent == 3
        servers = [entry[0] for entry in net.log]
        assert servers[0] in ROOTS
        assert servers[1:] == ["10.0.0.1", "10.1.0.1"]

    def test_trace_records_layers(self):
        net = standard_tree()
        result = drive(machine().resolve("www.example.com", RRType.A), net)
        layers = [step.layer for step in result.trace]
        assert layers == [".", "com", "example.com"]
        assert [step.depth for step in result.trace] == [1, 2, 3]

    def test_delegations_are_cached(self):
        cache = SelectiveCache(capacity=100)
        net = standard_tree()
        drive(machine(cache).resolve("www.example.com", RRType.A), net)
        assert cache.get_delegation(N("com")) is not None
        assert cache.get_delegation(N("example.com")) is not None

    def test_cached_start_skips_layers(self):
        cache = SelectiveCache(capacity=100)
        net = standard_tree()
        drive(machine(cache).resolve("www.example.com", RRType.A), net)
        net.log.clear()
        result = drive(machine(cache).resolve("other.example.com", RRType.A), net)
        assert result.status == Status.NOERROR
        assert [entry[0] for entry in net.log] == ["10.1.0.1"]
        assert result.trace.steps[0].cached

    def test_leaf_answers_not_cached(self):
        cache = SelectiveCache(capacity=100)
        drive(machine(cache).resolve("www.example.com", RRType.A), standard_tree())
        assert cache.get_answer(N("www.example.com"), RRType.A) is None

    def test_nxdomain(self):
        net = standard_tree(final_records=[], rcode=Rcode.NXDOMAIN)
        result = drive(machine().resolve("gone.example.com", RRType.A), net)
        assert result.status == Status.NXDOMAIN
        assert result.is_success  # the paper counts NXDOMAIN as success

    def test_nodata(self):
        net = standard_tree(final_records=[])
        result = drive(machine().resolve("www.example.com", RRType.AAAA), net)
        assert result.status == Status.NOERROR
        assert not result.answers


class TestFailureHandling:
    def test_timeouts_exhaust_to_iterative_timeout(self):
        net = ScriptedInternet()
        for ip in ROOTS:
            net.add(ip, lambda e: None)  # silence
        result = drive(machine().resolve("x.com", RRType.A), net)
        assert result.status == Status.ITERATIVE_TIMEOUT
        assert result.retries_used >= 1

    def test_retry_second_server_succeeds(self):
        net = ScriptedInternet()
        net.add(ROOTS[0], lambda e: None)
        net.add(ROOTS[1], lambda e: referral_msg("com", ["10.0.0.1"]))
        net.add("10.0.0.1", lambda e: answer_msg("x.com", [rr("x.com", RRType.A, A("1.2.3.4"))]))
        result = drive(machine(config=ResolverConfig(retries=2)).resolve("x.com", RRType.A), net)
        assert result.status == Status.NOERROR
        assert result.retries_used >= 0
        assert result.queries_sent >= 2

    def test_servfail_tries_next_and_reports(self):
        net = ScriptedInternet()
        for ip in ROOTS:
            net.add(ip, lambda e: answer_msg("x.com", [], rcode=Rcode.SERVFAIL))
        result = drive(machine().resolve("x.com", RRType.A), net)
        assert result.status == Status.SERVFAIL

    def test_refused_reported(self):
        net = ScriptedInternet()
        for ip in ROOTS:
            net.add(ip, lambda e: answer_msg("x.com", [], rcode=Rcode.REFUSED))
        result = drive(machine().resolve("x.com", RRType.A), net)
        assert result.status == Status.REFUSED

    def test_upward_referral_is_error(self):
        net = ScriptedInternet()
        for ip in ROOTS:
            net.add(ip, lambda e: referral_msg("com", ["10.0.0.1"]))
        # the com server refers back to com: a lame loop
        net.add("10.0.0.1", lambda e: referral_msg("com", ["10.0.0.1"]))
        result = drive(machine().resolve("x.com", RRType.A), net)
        assert result.status == Status.ERROR

    def test_sideways_referral_is_error(self):
        net = ScriptedInternet()
        for ip in ROOTS:
            net.add(ip, lambda e: referral_msg("com", ["10.0.0.1"]))
        net.add("10.0.0.1", lambda e: referral_msg("org", ["10.0.0.2"]))
        result = drive(machine().resolve("x.com", RRType.A), net)
        assert result.status == Status.ERROR

    def test_query_budget_enforced(self):
        config = ResolverConfig(retries=0, max_queries=5)
        net = ScriptedInternet()
        # an endless chain of deeper referrals
        def deeper(effect):
            depth = len(effect.name.labels)
            zone = effect.name.to_text(omit_final_dot=True)
            suffix = ".".join(zone.split(".")[-min(depth, 1):])
            return referral_msg(zone, ["10.0.0.9"])

        for ip in ROOTS:
            net.add(ip, lambda e: referral_msg("com", ["10.0.0.9"]))

        labels = "a.b.c.d.e.f.g.h.i.j.k.l.m.n.o.p.com"
        zones = labels.split(".")
        def chain(effect):
            qname = effect.name.to_text(omit_final_dot=True)
            # always refer one label deeper toward the query name
            parts = qname.split(".")
            for i in range(len(parts) - 1, -1, -1):
                zone = ".".join(parts[i:])
                yield zone

        state = {"depth": 1}
        def refer_deeper(effect):
            parts = effect.name.to_text(omit_final_dot=True).split(".")
            state["depth"] += 1
            zone = ".".join(parts[-min(state["depth"], len(parts)):])
            return referral_msg(zone, ["10.0.0.9"])

        net.add("10.0.0.9", refer_deeper)
        result = drive(machine(config=config).resolve(labels, RRType.A), net)
        assert result.status in (Status.ITER_LIMIT, Status.ERROR)
        assert result.queries_sent <= 6


class TestTruncationFallback:
    def test_tc_triggers_tcp_retry(self):
        net = ScriptedInternet()
        for ip in ROOTS:
            net.add(ip, lambda e: referral_msg("com", ["10.0.0.1"]))

        def auth(effect):
            if effect.protocol == "udp":
                return answer_msg("x.com", [], truncated=True)
            return answer_msg("x.com", [rr("x.com", RRType.A, A("4.3.2.1"))])

        net.add("10.0.0.1", auth)
        result = drive(machine().resolve("x.com", RRType.A), net)
        assert result.status == Status.NOERROR
        assert result.answers[0].rdata == A("4.3.2.1")
        assert ("10.0.0.1", "x.com.", 1, "tcp") in net.log

    def test_tcp_disabled_counts_as_failure(self):
        config = ResolverConfig(retries=0, tcp_on_truncated=False)
        net = ScriptedInternet()
        for ip in ROOTS:
            net.add(ip, lambda e: referral_msg("com", ["10.0.0.1"]))
        net.add("10.0.0.1", lambda e: answer_msg("x.com", [], truncated=True))
        result = drive(machine(config=config).resolve("x.com", RRType.A), net)
        assert result.status != Status.NOERROR


class TestCNAMEChasing:
    def test_single_hop(self):
        net = standard_tree(
            final_records=None
        )
        def auth(effect):
            qname = effect.name.to_text(omit_final_dot=True)
            if qname == "www.example.com":
                return answer_msg(qname, [rr(qname, RRType.CNAME, CNAME(N("target.example.com")))])
            return answer_msg(qname, [rr(qname, RRType.A, A("7.7.7.7"))])

        net.add("10.1.0.1", auth)
        result = drive(machine().resolve("www.example.com", RRType.A), net)
        assert result.status == Status.NOERROR
        types = [int(record.rrtype) for record in result.answers]
        assert int(RRType.CNAME) in types and int(RRType.A) in types

    def test_cname_answer_in_same_response_not_rechased(self):
        records = [
            rr("www.example.com", RRType.CNAME, CNAME(N("example.com"))),
            rr("example.com", RRType.A, A("9.9.9.9")),
        ]
        net = standard_tree(final_records=records)
        # machine chases because matched set has CNAME but no A for owner
        def auth(effect):
            qname = effect.name.to_text(omit_final_dot=True)
            if qname == "www.example.com":
                return answer_msg(qname, records)
            return answer_msg(qname, [rr(qname, RRType.A, A("9.9.9.9"))])
        net.add("10.1.0.1", auth)
        result = drive(machine().resolve("www.example.com", RRType.A), net)
        assert result.status == Status.NOERROR

    def test_chain_loop_aborts(self):
        net = standard_tree()
        def auth(effect):
            qname = effect.name.to_text(omit_final_dot=True)
            nxt = "a.example.com" if qname != "a.example.com" else "b.example.com"
            return answer_msg(qname, [rr(qname, RRType.CNAME, CNAME(N(nxt)))])
        net.add("10.1.0.1", auth)
        result = drive(machine().resolve("www.example.com", RRType.A), net)
        assert result.status == Status.ERROR

    def test_cname_query_type_not_chased(self):
        net = standard_tree(
            final_records=[rr("www.example.com", RRType.CNAME, CNAME(N("t.example.com")))]
        )
        result = drive(machine().resolve("www.example.com", RRType.CNAME), net)
        assert result.status == Status.NOERROR
        assert len(result.answers) == 1

    def test_self_loop_aborts(self):
        """A CNAME pointing at its own owner (a -> a) must exhaust the
        chase budget and abort, not spin or return the bare CNAME as a
        terminal answer."""
        net = standard_tree()

        def auth(effect):
            qname = effect.name.to_text(omit_final_dot=True)
            return answer_msg(qname, [rr(qname, RRType.CNAME, CNAME(N(qname)))])

        net.add("10.1.0.1", auth)
        result = drive(machine().resolve("www.example.com", RRType.A), net)
        assert result.status == Status.ERROR

    def _chain_tree(self, links):
        """c0 -> c1 -> ... -> c<links>, with an A record at the end."""
        net = standard_tree()

        def auth(effect):
            qname = effect.name.to_text(omit_final_dot=True)
            index = int(qname.split(".", 1)[0][1:])
            if index < links:
                target = f"c{index + 1}.example.com"
                return answer_msg(qname, [rr(qname, RRType.CNAME, CNAME(N(target)))])
            return answer_msg(qname, [rr(qname, RRType.A, A("7.7.7.7"))])

        net.add("10.1.0.1", auth)
        return net

    def test_chain_at_chase_limit_succeeds(self):
        config = ResolverConfig(retries=1, max_cname_chase=3)
        net = self._chain_tree(links=3)
        result = drive(
            machine(config=config).resolve("c0.example.com", RRType.A), net
        )
        assert result.status == Status.NOERROR
        assert any(int(record.rrtype) == int(RRType.A) for record in result.answers)

    def test_chain_one_past_limit_aborts(self):
        config = ResolverConfig(retries=1, max_cname_chase=3)
        net = self._chain_tree(links=4)
        result = drive(
            machine(config=config).resolve("c0.example.com", RRType.A), net
        )
        assert result.status == Status.ERROR

    def test_apex_cname_warm_hit_with_answer_cache(self):
        """A CNAME at a zone apex under policy="all": the warm lookup
        must be served from the answer cache and present the same view
        of the chain as the cold one."""
        cache = SelectiveCache(capacity=100, policy="all")
        net = standard_tree()

        def auth(effect):
            qname = effect.name.to_text(omit_final_dot=True)
            if qname == "example.com":
                return answer_msg(
                    qname, [rr(qname, RRType.CNAME, CNAME(N("alias.example.com")))]
                )
            return answer_msg(qname, [rr(qname, RRType.A, A("7.7.7.7"))])

        net.add("10.1.0.1", auth)

        def view(res):
            return sorted(
                (record.name.to_text(), int(record.rrtype), repr(record.rdata))
                for record in res.answers
            )

        cold = drive(machine(cache).resolve("example.com", RRType.A), net)
        assert cold.status == Status.NOERROR
        warm = drive(machine(cache).resolve("example.com", RRType.A), net)
        assert warm.status == Status.NOERROR
        assert cache.stats.answer_hits >= 1
        assert view(cold) == view(warm)


class TestTCPFallbackValidation:
    def test_garbage_tcp_retry_is_not_trusted(self):
        """Regression (found by the differential oracle): the TCP retry
        after a truncated UDP response skipped response validation, so a
        wrong-question garbage reply over TCP was ingested and surfaced
        as an authoritative NODATA (NOERROR with no answers)."""
        net = standard_tree()

        def auth(effect):
            qname = effect.name.to_text(omit_final_dot=True)
            if effect.protocol == "tcp":
                garbage = answer_msg("garbage.invalid", [])
                garbage.questions = [Question(N("garbage.invalid"), RRType.A)]
                return garbage
            return answer_msg(
                qname, [rr(qname, RRType.A, A("7.7.7.7"))], truncated=True
            )

        net.add("10.1.0.1", auth)
        result = drive(machine().resolve("www.example.com", RRType.A), net)
        assert not (result.status == Status.NOERROR and not result.answers)
        assert result.status != Status.NOERROR


class FaultyResponder:
    """Wraps a responder with a :class:`FaultInjector`, mimicking the
    hook order of ``SimNetwork._query`` (on_send → at_server → on_reply)
    so a scripted :class:`FaultPlan` can drive the sans-IO machine
    directly — no simulator needed.  The fake clock advances one second
    per query, so time-windowed directives script multi-attempt
    scenarios (e.g. "SERVFAIL until t=0.5, then recover")."""

    def __init__(self, inner, plan, seed=0):
        from repro.faults import FaultInjector

        class _Clock:
            now = 0.0

        self.clock = _Clock()
        self.injector = FaultInjector(plan, sim=self.clock, seed=seed)
        self.inner = inner

    def __call__(self, effect):
        from repro.dnslib import Message

        injector = self.injector
        try:
            verdict = injector.on_send(effect.server_ip, effect.protocol)
            if verdict is not None and verdict.drop:
                return None
            query = Message.make_query(effect.name, effect.qtype)
            synthetic = injector.at_server(effect.server_ip, effect.protocol, query)
            if synthetic is not None:
                return synthetic
            response = self.inner(effect)
            if response is None:
                return None
            return injector.on_reply(effect.server_ip, effect.protocol, query, response)
        finally:
            self.clock.now += 1.0


class TestFaultPlanDriven:
    """The satellite scenarios: scripted fault plans proving the machine
    recovers through rcode storms and forced truncation."""

    def test_retry_servfail_recovers_after_storm_window(self):
        from repro.faults import FaultPlan, RcodeStorm

        # the resolver SERVFAILs until t=0.5, then serves normally: with
        # retry_servfail on, attempt 1 eats the storm and attempt 2 wins
        plan = FaultPlan([RcodeStorm(rcode="SERVFAIL", end=0.5)])
        net = ScriptedInternet()
        net.add("8.8.8.8", lambda e: answer_msg(
            "x.com", [rr("x.com", RRType.A, A("5.5.5.5"))]
        ))
        responder = FaultyResponder(net, plan)
        gen = ExternalMachine(
            ["8.8.8.8"], ResolverConfig(retries=1, retry_servfail=True)
        ).resolve("x.com", RRType.A)
        result = drive(gen, responder)
        assert result.status == Status.NOERROR
        assert result.queries_sent == 2
        assert responder.injector.counts["rcode_storm_0"] == 1

    def test_retry_servfail_off_reports_storm_rcode(self):
        from repro.faults import FaultPlan, RcodeStorm

        plan = FaultPlan([RcodeStorm(rcode="REFUSED")])
        net = ScriptedInternet()
        net.add("8.8.8.8", lambda e: answer_msg(
            "x.com", [rr("x.com", RRType.A, A("5.5.5.5"))]
        ))
        gen = ExternalMachine(
            ["8.8.8.8"], ResolverConfig(retries=2, retry_servfail=False)
        ).resolve("x.com", RRType.A)
        result = drive(gen, FaultyResponder(net, plan))
        assert result.status == Status.REFUSED
        assert result.queries_sent == 1

    def test_iterative_storm_tries_next_root(self):
        from repro.faults import FaultPlan, RcodeStorm

        # only the first-tried root storms; the machine moves on
        plan = FaultPlan([RcodeStorm(rcode="SERVFAIL", end=0.5)])
        net = standard_tree()
        result = drive(
            machine(config=ResolverConfig(retries=2)).resolve(
                "www.example.com", RRType.A
            ),
            FaultyResponder(net, plan),
        )
        assert result.status == Status.NOERROR
        assert result.answers[0].rdata == A("93.0.0.1")

    def test_forced_truncation_falls_back_to_tcp(self):
        from repro.faults import FaultPlan, Truncate

        # every UDP reply gets the TC bit: the machine must re-ask each
        # layer over TCP (which the injector leaves untouched)
        plan = FaultPlan([Truncate()])
        net = standard_tree()
        responder = FaultyResponder(net, plan)
        result = drive(machine().resolve("www.example.com", RRType.A), responder)
        assert result.status == Status.NOERROR
        assert result.answers[0].rdata == A("93.0.0.1")
        protocols = [entry[3] for entry in net.log]
        assert "tcp" in protocols
        assert responder.injector.counts["truncate_0"] >= 1

    def test_truncation_with_tcp_disabled_fails(self):
        from repro.faults import FaultPlan, Truncate

        plan = FaultPlan([Truncate()])
        config = ResolverConfig(retries=0, tcp_on_truncated=False)
        result = drive(
            machine(config=config).resolve("www.example.com", RRType.A),
            FaultyResponder(standard_tree(), plan),
        )
        assert result.status != Status.NOERROR

    def test_garbage_reply_rejected_not_interpreted(self):
        from repro.faults import FaultPlan, Garbage

        # garbage until t=1.5 (2 queries), then clean: validation must
        # reject the bogus replies and the retry path must still win
        plan = FaultPlan([Garbage(end=1.5)])
        net = ScriptedInternet()
        net.add("8.8.8.8", lambda e: answer_msg(
            "x.com", [rr("x.com", RRType.A, A("5.5.5.5"))]
        ))
        gen = ExternalMachine(
            ["8.8.8.8"], ResolverConfig(retries=3)
        ).resolve("x.com", RRType.A)
        result = drive(gen, FaultyResponder(net, plan))
        assert result.status == Status.NOERROR
        assert result.queries_sent >= 2


class TestGluelessReferrals:
    def test_ns_address_resolved_out_of_band(self):
        net = ScriptedInternet()
        for ip in ROOTS:
            def root(effect):
                qname = effect.name.to_text(omit_final_dot=True)
                if qname.endswith("example.net"):
                    return referral_msg("example.net", ["10.2.0.1"])
                return referral_msg("com", ["10.0.0.1"])
            net.add(ip, root)
        # com referral for example.com has NO glue; NS is ns1.example.net
        def com_server(effect):
            msg = Message(flags=Flags(response=True))
            msg.authorities.append(rr("example.com", RRType.NS, NS(N("ns1.example.net"))))
            return msg
        net.add("10.0.0.1", com_server)
        net.add("10.2.0.1", lambda e: answer_msg(
            e.name.to_text(), [rr(e.name.to_text(omit_final_dot=True), RRType.A, A("10.3.0.1"))]
        ))
        net.add("10.3.0.1", lambda e: answer_msg(
            "www.example.com", [rr("www.example.com", RRType.A, A("8.8.4.4"))]
        ))
        result = drive(machine().resolve("www.example.com", RRType.A), net)
        assert result.status == Status.NOERROR
        assert result.answers[0].rdata == A("8.8.4.4")
        assert ("10.3.0.1", "www.example.com.", 1, "udp") in net.log

    def test_unresolvable_glueless_is_servfail(self):
        net = ScriptedInternet()
        for ip in ROOTS:
            net.add(ip, lambda e: referral_msg("com", ["10.0.0.1"]))
        def com_server(effect):
            msg = Message(flags=Flags(response=True))
            msg.authorities.append(rr("example.com", RRType.NS, NS(N("ns1.dark.example"))))
            return msg
        net.add("10.0.0.1", com_server)
        config = ResolverConfig(retries=0)
        result = drive(machine(config=config).resolve("www.example.com", RRType.A), net)
        assert result.status in (Status.SERVFAIL, Status.ERROR, Status.ITERATIVE_TIMEOUT)


class TestExternalMachine:
    def responder_ok(self, effect):
        assert effect.recursion_desired
        return answer_msg(
            effect.name.to_text(), [rr(effect.name.to_text(omit_final_dot=True), RRType.A, A("5.5.5.5"))]
        )

    def test_basic_lookup(self):
        gen = ExternalMachine(["8.8.8.8"]).resolve("x.com", RRType.A)
        result = drive(gen, self.responder_ok)
        assert result.status == Status.NOERROR
        assert result.resolver == "8.8.8.8:53"
        assert result.queries_sent == 1

    def test_timeout_retries_then_fails(self):
        gen = ExternalMachine(["8.8.8.8"], ResolverConfig(retries=2)).resolve("x.com", RRType.A)
        calls = []
        result = drive(gen, lambda e: calls.append(1))
        assert result.status == Status.TIMEOUT
        assert len(calls) == 3
        assert result.retries_used == 3

    def test_servfail_retried_then_reported(self):
        attempts = []
        def responder(effect):
            attempts.append(1)
            return answer_msg("x.com", [], rcode=Rcode.SERVFAIL)
        gen = ExternalMachine(["8.8.8.8"], ResolverConfig(retries=1)).resolve("x.com", RRType.A)
        result = drive(gen, responder)
        assert result.status == Status.SERVFAIL
        assert len(attempts) == 2

    def test_truncated_retries_over_tcp(self):
        def responder(effect):
            if effect.protocol == "udp":
                return answer_msg("x.com", [], truncated=True)
            return answer_msg("x.com", [rr("x.com", RRType.A, A("6.6.6.6"))])
        gen = ExternalMachine(["8.8.8.8"]).resolve("x.com", RRType.A)
        result = drive(gen, responder)
        assert result.status == Status.NOERROR
        assert result.protocol == "tcp"

    def test_load_balances_across_resolvers(self):
        ips = {f"8.8.8.{i}" for i in range(4)}
        seen = set()
        def responder(effect):
            seen.add(effect.server_ip)
            return None
        gen = ExternalMachine(sorted(ips), ResolverConfig(retries=20)).resolve("x.com", RRType.A)
        drive(gen, responder)
        assert len(seen) >= 3

    def test_requires_a_resolver(self):
        with pytest.raises(ValueError):
            ExternalMachine([])

    def test_nxdomain_passthrough(self):
        gen = ExternalMachine(["8.8.8.8"]).resolve("gone.com", RRType.A)
        result = drive(gen, lambda e: answer_msg("gone.com", [], rcode=Rcode.NXDOMAIN))
        assert result.status == Status.NXDOMAIN
        assert result.is_success
