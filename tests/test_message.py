"""Tests for DNS message encode/decode, flags, and EDNS."""

import pytest

from repro.dnslib import (
    DNSClass,
    Flags,
    Message,
    Name,
    Opcode,
    Question,
    Rcode,
    ResourceRecord,
    RRType,
    WireError,
    add_edns,
    get_edns,
    max_payload,
)
from repro.dnslib.edns import EDNSOption
from repro.dnslib.rdata.address import A
from repro.dnslib.rdata.names import NS


def make_response_with_answers(count=1):
    query = Message.make_query("example.com", RRType.A, txid=7)
    response = query.make_response(authoritative=True)
    for i in range(count):
        response.answers.append(
            ResourceRecord(Name.from_text("example.com"), RRType.A, 1, 300, A(f"192.0.2.{i + 1}"))
        )
    return response


class TestFlags:
    @pytest.mark.parametrize("bit", [
        "response", "authoritative", "truncated", "recursion_desired",
        "recursion_available", "authenticated", "checking_disabled",
    ])
    def test_each_bit_roundtrips(self, bit):
        flags = Flags(**{bit: True})
        decoded = Flags.from_int(flags.to_int())
        assert getattr(decoded, bit) is True
        assert flags == decoded

    def test_rcode_and_opcode_roundtrip(self):
        flags = Flags(opcode=Opcode.NOTIFY, rcode=Rcode.REFUSED)
        decoded = Flags.from_int(flags.to_int())
        assert decoded.opcode == Opcode.NOTIFY
        assert decoded.rcode == Rcode.REFUSED

    def test_json_shape_matches_appendix_c(self):
        block = Flags(response=True, authoritative=True).to_json()
        assert set(block) == {
            "response", "opcode", "authoritative", "truncated",
            "recursion_desired", "recursion_available", "authenticated",
            "checking_disabled", "error_code",
        }
        assert block["error_code"] == 0


class TestMessage:
    def test_query_construction(self):
        query = Message.make_query("www.test.com", RRType.AAAA, txid=99)
        assert query.id == 99
        assert query.question.rrtype == RRType.AAAA
        assert query.flags.recursion_desired
        assert not query.flags.response

    def test_query_without_recursion(self):
        query = Message.make_query("x.com", RRType.A, recursion_desired=False)
        assert not query.flags.recursion_desired

    def test_response_echoes_id_and_question(self):
        query = Message.make_query("example.com", RRType.A, txid=1234)
        response = query.make_response(rcode=Rcode.NXDOMAIN)
        assert response.id == 1234
        assert response.flags.response
        assert response.rcode == Rcode.NXDOMAIN
        assert response.question == query.question

    def test_full_roundtrip_all_sections(self):
        response = make_response_with_answers(2)
        response.authorities.append(
            ResourceRecord(Name.from_text("example.com"), RRType.NS, 1, 86400, NS(Name.from_text("ns1.example.com")))
        )
        response.additionals.append(
            ResourceRecord(Name.from_text("ns1.example.com"), RRType.A, 1, 86400, A("198.51.100.1"))
        )
        decoded = Message.from_wire(response.to_wire())
        assert len(decoded.answers) == 2
        assert len(decoded.authorities) == 1
        assert len(decoded.additionals) == 1
        assert decoded.answers[0].rdata == A("192.0.2.1")
        assert list(decoded.records())

    def test_compression_shrinks_message(self):
        response = make_response_with_answers(4)
        compressed = response.to_wire()
        # Encoding each name fresh would repeat "example.com" 5 times.
        uncompressed_estimate = 12 + 5 * (17 + 4) + 4 * 14
        assert len(compressed) < uncompressed_estimate

    def test_truncation_when_exceeding_max_size(self):
        response = make_response_with_answers(40)
        wire = response.to_wire(max_size=512)
        assert len(wire) <= 512
        decoded = Message.from_wire(wire)
        assert decoded.flags.truncated
        assert decoded.questions == response.questions
        assert not decoded.answers

    def test_no_truncation_when_fits(self):
        wire = make_response_with_answers(1).to_wire(max_size=512)
        decoded = Message.from_wire(wire)
        assert not decoded.flags.truncated
        assert len(decoded.answers) == 1

    def test_short_packet_rejected(self):
        with pytest.raises(WireError):
            Message.from_wire(b"\x00\x01\x02")

    def test_truncated_record_rejected(self):
        wire = make_response_with_answers(1).to_wire()
        with pytest.raises(WireError):
            Message.from_wire(wire[:-2])

    def test_question_with_unknown_type_survives(self):
        writer_msg = Message(id=5, questions=[Question(Name.from_text("a.b"), 61000, DNSClass.IN)])
        decoded = Message.from_wire(writer_msg.to_wire())
        assert int(decoded.question.rrtype) == 61000

    def test_to_text_contains_sections(self):
        text = make_response_with_answers(1).to_text()
        assert "QUESTION SECTION" in text
        assert "ANSWER SECTION" in text
        assert "192.0.2.1" in text

    def test_json_record_shape(self):
        record = make_response_with_answers(1).answers[0].to_json()
        assert record == {
            "name": "example.com",
            "type": "A",
            "class": "IN",
            "ttl": 300,
            "answer": "192.0.2.1",
        }


class TestEDNS:
    def test_add_and_get(self):
        query = Message.make_query("example.com", RRType.A)
        add_edns(query, payload_size=1232, dnssec_ok=True)
        info = get_edns(query)
        assert info.payload_size == 1232
        assert info.dnssec_ok
        assert info.version == 0

    def test_add_is_idempotent(self):
        query = Message.make_query("example.com", RRType.A)
        add_edns(query)
        add_edns(query)
        assert sum(1 for r in query.additionals if int(r.rrtype) == int(RRType.OPT)) == 1

    def test_roundtrip_through_wire(self):
        query = Message.make_query("example.com", RRType.A)
        add_edns(query, payload_size=4096, options=(EDNSOption(10, b"\x01" * 8),))
        decoded = Message.from_wire(query.to_wire())
        info = get_edns(decoded)
        assert info.payload_size == 4096
        assert info.options == (EDNSOption(10, b"\x01" * 8),)

    def test_max_payload_defaults_to_512(self):
        assert max_payload(Message.make_query("a.b", RRType.A)) == 512

    def test_max_payload_floors_at_512(self):
        query = Message.make_query("a.b", RRType.A)
        add_edns(query, payload_size=100)
        assert max_payload(query) == 512
