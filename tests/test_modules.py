"""Tests for scan modules running on the simulated Internet."""

import pytest

from repro.core import ResolverConfig, SelectiveCache
from repro.core.engine import SimDriver
from repro.dnslib import Name, RRType
from repro.ecosystem import EcosystemParams, build_internet
from repro.modules import ModuleContext, available_modules, get_module
from repro.net import SimUDPSocket, SourceIPPool

N = Name.from_text


@pytest.fixture(scope="module")
def internet():
    return build_internet(params=EcosystemParams(seed=99))


@pytest.fixture(scope="module")
def synth(internet):
    return internet.synth


def run_module(internet, module_name, raw_input, mode="iterative", retries=2, **ctx_kwargs):
    module = get_module(module_name)
    context = ModuleContext(
        mode=mode,
        root_ips=internet.root_ips,
        resolver_ips=[internet.google_ip],
        cache=SelectiveCache(capacity=10_000),
        config=ResolverConfig(retries=retries),
        **ctx_kwargs,
    )
    driver = SimDriver(internet.network)
    socket = SimUDPSocket(internet.network, SourceIPPool())
    routine = driver.execute(module.lookup(raw_input, context), socket)
    future = internet.sim.spawn(routine)
    internet.sim.run()
    row = future.result()
    row.pop("_result", None)
    return row


def find(synth, predicate, tld="com", prefix="mtest", limit=50000):
    for i in range(limit):
        base = N(f"{prefix}-{i}.{tld}")
        profile = synth.profile(base)
        if predicate(profile):
            return f"{prefix}-{i}.{tld}", profile
    raise AssertionError("no matching domain")


class TestRegistry:
    def test_all_paper_types_have_modules(self):
        modules = set(available_modules())
        for name in ["A", "AAAA", "CAA", "MX", "TXT", "PTR", "NS", "SOA", "SPF", "URI"]:
            assert name in modules

    def test_lookup_modules_registered(self):
        modules = set(available_modules())
        assert {"ALOOKUP", "MXLOOKUP", "NSLOOKUP", "SPFLOOKUP", "DMARC",
                "BINDVERSION", "CAALOOKUP", "ALLNS", "PTRIP"} <= modules

    def test_case_insensitive(self):
        assert get_module("mxlookup").name == "MXLOOKUP"

    def test_unknown_module_raises(self):
        with pytest.raises(KeyError):
            get_module("NOPE")

    def test_at_least_60_modules(self):
        assert len(available_modules()) >= 60


class TestRawModules:
    def test_a_module_row_shape(self, internet, synth):
        name, _ = find(synth, lambda p: p.exists and not p.truncates)
        row = run_module(internet, "A", name)
        assert row["status"] == "NOERROR"
        assert row["name"] == name
        assert row["data"]["answers"]
        assert all(a["type"] == "A" for a in row["data"]["answers"])

    def test_ns_module(self, internet, synth):
        name, profile = find(synth, lambda p: p.exists)
        row = run_module(internet, "NS", name)
        assert row["status"] == "NOERROR"
        got = {a["answer"].rstrip(".") for a in row["data"]["answers"]}
        want = {ns.name.to_text(omit_final_dot=True) for ns in profile.nameservers}
        assert got == want

    def test_txt_module_spf_content(self, internet, synth):
        name, _ = find(synth, lambda p: p.exists and p.has_spf)
        row = run_module(internet, "TXT", name)
        assert any("v=spf1" in a["answer"] for a in row["data"]["answers"])

    def test_soa_module(self, internet, synth):
        name, _ = find(synth, lambda p: p.exists)
        row = run_module(internet, "SOA", name)
        assert row["data"]["answers"][0]["answer"]["serial"] > 0

    def test_ptrip_module_accepts_plain_ip(self, internet, synth):
        ip = next(
            f"23.11.{i}.8" for i in range(200) if synth.ptr_status(f"23.11.{i}.8") == "noerror"
        )
        row = run_module(internet, "PTRIP", ip)
        assert row["status"] == "NOERROR"
        assert row["data"]["answers"][0]["type"] == "PTR"

    def test_external_mode(self, internet, synth):
        name, _ = find(synth, lambda p: p.exists)
        row = run_module(internet, "A", name, mode="external")
        assert row["status"] == "NOERROR"
        assert row["data"]["resolver"] == "8.8.8.8:53"


class TestLookupModules:
    def test_alookup_returns_addresses(self, internet, synth):
        name, _ = find(synth, lambda p: p.exists and not p.truncates)
        row = run_module(internet, "ALOOKUP", name)
        assert row["status"] == "NOERROR"
        assert row["data"]["ipv4_addresses"]

    def test_alookup_follows_www_cname(self, internet, synth):
        name, profile = find(
            synth, lambda p: p.exists and p.www_is_cname and not p.truncates
        )
        fqdn = f"www.{name}"
        if not synth.subdomain_exists(N(fqdn), profile):
            pytest.skip("www missing for this domain")
        row = run_module(internet, "ALOOKUP", fqdn)
        assert row["status"] == "NOERROR"
        assert set(row["data"]["ipv4_addresses"]) == set(
            synth.host_addresses(N(name), "a")
        )

    def test_mxlookup_resolves_exchanges(self, internet, synth):
        name, _ = find(synth, lambda p: p.exists and p.has_mx and not p.truncates)
        row = run_module(internet, "MXLOOKUP", name)
        assert row["status"] == "NOERROR"
        assert row["data"]["exchanges"]
        for exchange in row["data"]["exchanges"]:
            assert exchange["ipv4_addresses"], exchange
            assert exchange["preference"] % 10 == 0

    def test_nslookup_addresses_match_profile(self, internet, synth):
        name, profile = find(synth, lambda p: p.exists)
        row = run_module(internet, "NSLOOKUP", name)
        ips = {ip for server in row["data"]["servers"] for ip in server["ipv4_addresses"]}
        assert ips == {ns.ip for ns in profile.nameservers}


class TestALookupIPv6Leg:
    """Regression: the --ipv6 leg used to run on a *second* machine from
    ``context.machine()`` (separate health/rng view) and its query and
    retry accounting was thrown away — ``queries_sent`` covered only the
    IPv4 leg, undercounting the scan's real traffic."""

    def _drive_counting(self, gen, internet):
        """Drive a module generator by answering SendQuery effects
        straight from the simulated servers, counting every query."""
        from repro.core import Backoff, SendQuery
        from repro.dnslib import Message

        sent = 0
        try:
            effect = next(gen)
            while True:
                if isinstance(effect, Backoff):
                    effect = gen.send(None)
                    continue
                assert isinstance(effect, SendQuery)
                sent += 1
                server = internet.network.server_for(effect.server_ip)
                response = None
                if server is not None:
                    query = Message.make_query(effect.name, effect.qtype)
                    reply = server.handle_query(
                        query, "192.0.2.77", 0.0, effect.protocol
                    )
                    response = reply.message if reply is not None else None
                effect = gen.send(response)
        except StopIteration as stop:
            return stop.value, sent

    def test_ipv6_leg_queries_are_accounted(self):
        from repro.modules.lookups import ALookupModule

        internet = build_internet(params=EcosystemParams(seed=7))
        synth = internet.synth
        module = ALookupModule()
        module.include_ipv6 = True

        name = None
        for i in range(50_000):
            candidate = f"v6test-{i}.com"
            profile = synth.profile(N(candidate))
            if profile.exists and not profile.truncates and all(
                ns.drop_prob == 0 and not ns.lame for ns in profile.nameservers
            ):
                name = candidate
                break
        assert name is not None

        context = ModuleContext(
            mode="iterative",
            root_ips=internet.root_ips,
            resolver_ips=[],
            cache=SelectiveCache(capacity=10_000),
            config=ResolverConfig(retries=2),
        )
        row, sent = self._drive_counting(module.lookup(name, context), internet)
        assert row["status"] == "NOERROR"
        assert "ipv6_addresses" in row["data"]
        result = row["_result"]
        # the AAAA leg is at least one extra query beyond the IPv4 walk,
        # and every wire query must be visible in the row's accounting
        assert result.queries_sent == sent
        assert sent >= 2

    def test_ipv6_leg_reuses_the_cache(self):
        """The AAAA leg must start from the delegations the IPv4 walk
        just cached — one shared machine, not a cold second resolver."""
        from repro.modules.lookups import ALookupModule

        internet = build_internet(params=EcosystemParams(seed=7))
        synth = internet.synth
        module = ALookupModule()
        module.include_ipv6 = True
        name = None
        for i in range(50_000):
            candidate = f"v6test-{i}.com"
            profile = synth.profile(N(candidate))
            if profile.exists and not profile.truncates and all(
                ns.drop_prob == 0 and not ns.lame for ns in profile.nameservers
            ):
                name = candidate
                break
        cache = SelectiveCache(capacity=10_000)
        context = ModuleContext(
            mode="iterative",
            root_ips=internet.root_ips,
            resolver_ips=[],
            cache=cache,
            config=ResolverConfig(retries=2),
        )
        row, sent = self._drive_counting(module.lookup(name, context), internet)
        assert row["status"] == "NOERROR"
        # IPv4 leg: root + com + auth = 3; AAAA leg rides the cached
        # delegation chain, so the total stays well under two full walks
        assert sent <= 4


class TestMiscModules:
    def test_spf_found(self, internet, synth):
        name, _ = find(synth, lambda p: p.exists and p.has_spf)
        row = run_module(internet, "SPFLOOKUP", name)
        assert row["status"] == "NOERROR"
        assert row["data"]["spf"].startswith("v=spf1")

    def test_spf_missing_is_error_status(self, internet, synth):
        name, _ = find(synth, lambda p: p.exists and not p.has_spf)
        row = run_module(internet, "SPFLOOKUP", name)
        assert row["status"] == "ERROR"
        assert row["data"]["spf"] is None

    def test_dmarc_found(self, internet, synth):
        name, _ = find(synth, lambda p: p.exists and p.has_dmarc)
        row = run_module(internet, "DMARC", name)
        assert row["status"] == "NOERROR"
        assert row["data"]["dmarc"].startswith("v=DMARC1")

    def test_bindversion(self, internet, synth):
        _, profile = find(synth, lambda p: p.exists)
        server_ip = profile.nameservers[0].ip
        row = run_module(internet, "BINDVERSION", server_ip)
        assert row["status"] == "NOERROR"
        assert row["data"]["version"]

    def test_caa_module_direct(self, internet, synth):
        name, profile = find(
            synth, lambda p: p.exists and p.caa is not None and not p.caa.via_cname
        )
        row = run_module(internet, "CAALOOKUP", name)
        assert row["data"]["has_caa"]
        assert not row["data"]["followed_cname"]
        tags = {record["tag"] for record in row["data"]["records"]}
        expected = set()
        if profile.caa.issue:
            expected.add("issue")
        if profile.caa.issuewild:
            expected.add("issuewild")
        if profile.caa.iodef:
            expected.add("iodef")
        expected.update(profile.caa.invalid_tags)
        assert tags == expected

    def test_caa_module_via_cname(self, internet, synth):
        name, _ = find(
            synth,
            lambda p: p.exists and p.caa is not None and p.caa.via_cname,
            limit=400_000,
        )
        row = run_module(internet, "CAALOOKUP", name)
        assert row["data"]["followed_cname"]
        assert row["data"]["has_caa"]

    def test_caa_invalid_tag_flagged(self, internet, synth):
        name, _ = find(
            synth,
            lambda p: p.exists and p.caa is not None and p.caa.invalid_tags,
            limit=800_000,
        )
        row = run_module(internet, "CAALOOKUP", name)
        assert any(not record["valid_tag"] for record in row["data"]["records"])

    def test_caa_none_for_non_holder(self, internet, synth):
        name, _ = find(synth, lambda p: p.exists and p.caa is None)
        row = run_module(internet, "CAALOOKUP", name)
        assert not row["data"]["has_caa"]


class TestAllNameserversModule:
    def test_healthy_domain_consistent(self, internet, synth):
        name, profile = find(
            synth,
            lambda p: p.exists and p.consistent_answers and not p.truncates
            and all(ns.drop_prob == 0 and not ns.lame for ns in p.nameservers),
        )
        row = run_module(internet, "ALLNS", name, retries=3)
        data = row["data"]
        assert len(data["nameservers"]) == len(profile.nameservers)
        assert data["consistent"] is True
        assert data["max_tries"] == 1

    def test_inconsistent_provider_detected(self, internet, synth):
        name, profile = find(
            synth,
            lambda p: p.exists and not p.consistent_answers and not p.truncates
            and len(p.nameservers) >= 2
            and all(ns.drop_prob == 0 and not ns.lame for ns in p.nameservers),
            limit=200_000,
        )
        row = run_module(internet, "ALLNS", name, retries=3)
        assert row["data"]["consistent"] is False

    def test_flaky_ns_needs_retries(self, internet, synth):
        name, profile = find(
            synth,
            lambda p: p.exists and not p.truncates
            and any(ns.drop_prob >= 0.9 for ns in p.nameservers),
            limit=400_000,
        )
        row = run_module(internet, "ALLNS", name, retries=9)
        assert row["data"]["max_tries"] >= 2


class TestHTTPSRecords:
    def test_https_module_on_cdn_hosted_domain(self, internet, synth):
        name, _ = find(
            synth,
            lambda p: p.exists
            and p.provider.consistent_answers
            and p.provider.ns_pool >= 6,
            limit=100_000,
        )
        # some of these domains publish HTTPS bindings; find one that does
        from repro.ecosystem import rand as _rand

        for i in range(100_000):
            candidate = f"mtest-{i}.com"
            profile = synth.profile(N(candidate))
            if (
                profile.exists
                and profile.provider.consistent_answers
                and profile.provider.ns_pool >= 6
                and _rand.uniform(synth.params.seed, candidate, "https-rr") < 0.5
                and not profile.truncates
                and all(ns.drop_prob == 0 and not ns.lame for ns in profile.nameservers)
            ):
                row = run_module(internet, "HTTPS", candidate)
                assert row["status"] == "NOERROR"
                answer = row["data"]["answers"][0]["answer"]
                assert answer["priority"] == 1
                assert "alpn" in answer["params"]
                return
        raise AssertionError("no HTTPS-publishing domain found")

    def test_https_nodata_for_small_provider(self, internet, synth):
        name, _ = find(
            synth,
            lambda p: p.exists and p.provider.ns_pool < 6 and not p.truncates
            and all(ns.drop_prob == 0 and not ns.lame for ns in p.nameservers),
        )
        row = run_module(internet, "HTTPS", name)
        assert row["status"] == "NOERROR"
        assert not row["data"]["answers"]
