"""Tests for repro.dnslib.name."""

import pytest

from repro.dnslib import Name, NameError_, name_from_ipv4_ptr


class TestParsing:
    def test_simple(self):
        name = Name.from_text("www.example.com")
        assert name.labels == (b"www", b"example", b"com")

    def test_trailing_dot_is_absolute_form(self):
        assert Name.from_text("example.com.") == Name.from_text("example.com")

    def test_root(self):
        assert Name.from_text(".").is_root
        assert Name.from_text("").is_root
        assert Name.root().to_text() == "."

    def test_bytes_input(self):
        assert Name.from_text(b"example.com") == Name.from_text("example.com")

    def test_escaped_dot(self):
        name = Name.from_text(r"a\.b.com")
        assert name.labels == (b"a.b", b"com")

    def test_decimal_escape(self):
        name = Name.from_text(r"a\032b.com")
        assert name.labels == (b"a b", b"com")

    def test_empty_label_rejected(self):
        with pytest.raises(NameError_):
            Name.from_text("a..com")

    def test_trailing_escape_rejected(self):
        with pytest.raises(NameError_):
            Name.from_text("abc\\")

    def test_label_too_long(self):
        with pytest.raises(NameError_):
            Name.from_text("a" * 64 + ".com")

    def test_label_63_ok(self):
        Name.from_text("a" * 63 + ".com")

    def test_name_too_long(self):
        label = "a" * 63
        with pytest.raises(NameError_):
            Name.from_text(".".join([label] * 4) + ".toolong")


class TestSemantics:
    def test_case_insensitive_equality(self):
        assert Name.from_text("WWW.Example.COM") == Name.from_text("www.example.com")
        assert hash(Name.from_text("A.B")) == hash(Name.from_text("a.b"))

    def test_case_preserved_in_text(self):
        assert Name.from_text("WwW.example.com").to_text() == "WwW.example.com."

    def test_parent_child(self):
        name = Name.from_text("a.b.com")
        assert name.parent() == Name.from_text("b.com")
        assert name.parent().child(b"a") == name

    def test_root_has_no_parent(self):
        with pytest.raises(NameError_):
            Name.root().parent()

    def test_subdomain(self):
        com = Name.from_text("com")
        assert Name.from_text("example.com").is_subdomain_of(com)
        assert Name.from_text("a.example.com").is_subdomain_of(com)
        assert com.is_subdomain_of(com)
        assert not com.is_subdomain_of(Name.from_text("example.com"))
        assert not Name.from_text("examplecom").is_subdomain_of(com)

    def test_everything_is_under_root(self):
        assert Name.from_text("x.y").is_subdomain_of(Name.root())

    def test_relativize(self):
        name = Name.from_text("a.b.example.com")
        assert name.relativize(Name.from_text("example.com")) == (b"a", b"b")
        with pytest.raises(NameError_):
            name.relativize(Name.from_text("other.com"))

    def test_ancestors(self):
        chain = list(Name.from_text("a.b.c").ancestors())
        assert [n.to_text() for n in chain] == ["a.b.c.", "b.c.", "c.", "."]

    def test_canonical_ordering_is_right_to_left(self):
        a = Name.from_text("z.a.com")
        b = Name.from_text("a.b.com")
        assert a < b  # a.com sorts before b.com

    def test_wire_length(self):
        assert Name.root().wire_length() == 1
        assert Name.from_text("ab.cd").wire_length() == 1 + 3 + 3

    def test_concatenate(self):
        joined = Name.from_text("www").concatenate(Name.from_text("example.com"))
        assert joined == Name.from_text("www.example.com")

    def test_iteration_and_len(self):
        name = Name.from_text("a.b.c")
        assert len(name) == 3
        assert list(name) == [b"a", b"b", b"c"]

    def test_special_bytes_roundtrip_text(self):
        name = Name((b"a\x00b", b"com"))
        assert Name.from_text(name.to_text()) == name


class TestPtrNames:
    def test_reverse_mapping(self):
        assert name_from_ipv4_ptr("192.0.2.1").to_text() == "1.2.0.192.in-addr.arpa."

    def test_invalid_address(self):
        with pytest.raises(NameError_):
            name_from_ipv4_ptr("300.1.1.1")
        with pytest.raises(NameError_):
            name_from_ipv4_ptr("1.2.3")
