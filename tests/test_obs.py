"""Tests for the observability stack: metrics registry, spans, status
emitter, metadata, and their wiring through the scan runner and CLI."""

import io
import json
import random

import pytest

from repro.core import (
    IterativeMachine,
    ResolverConfig,
    SelectiveCache,
    SendQuery,
    Status,
)
from repro.dnslib import RRType
from repro.framework import ScanConfig, ScanRunner
from repro.framework.stats import ScanStats
from repro.net.sim import Simulator
from repro.obs import (
    MetricsRegistry,
    NullInstrument,
    SpanTracer,
    StatusEmitter,
    build_run_metadata,
    estimate_eta,
    format_status_line,
    parse_prometheus,
    write_metadata,
)
from repro.obs.metrics import NULL_REGISTRY, bucket_bounds, bucket_index


class TestCountersAndGauges:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("lookups")
        counter.inc()
        counter.inc(4)
        assert counter.snapshot() == 5
        assert registry.snapshot() == {"lookups": 5}

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("inflight")
        gauge.inc(3)
        gauge.dec()
        assert gauge.value == 2
        gauge.set(17)
        assert gauge.snapshot() == 17

    def test_same_name_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("a")

    def test_scope_qualifies_names(self):
        registry = MetricsRegistry()
        engine = registry.scope("engine")
        engine.counter("lookups").inc()
        engine.scope("status").counter("NOERROR").inc()
        assert set(registry.snapshot()) == {"engine.lookups", "engine.status.NOERROR"}

    def test_disabled_registry_hands_out_shared_null(self):
        registry = MetricsRegistry(enabled=False)
        a = registry.counter("a")
        b = registry.scope("x").histogram("b")
        assert isinstance(a, NullInstrument) and a is b
        a.inc()
        b.observe(3.0)
        assert len(registry) == 0
        assert registry.snapshot() == {}

    def test_null_registry_is_disabled(self):
        assert not NULL_REGISTRY.enabled
        NULL_REGISTRY.counter("anything").inc()
        assert len(NULL_REGISTRY) == 0


class TestHistogram:
    def test_bucket_boundaries_contain_their_values(self):
        # powers of two sit at bucket lower edges; 1.5x points split them
        for value in (0.001, 0.0015, 0.5, 0.74, 0.75, 1.0, 1.49, 1.5, 2.0, 1000.0):
            low, high = bucket_bounds(bucket_index(value))
            assert low <= value < high, (value, low, high)

    def test_bucket_split_at_three_quarters(self):
        # [0.5, 0.75) and [0.75, 1.0) are distinct half-octave buckets
        assert bucket_index(0.74) != bucket_index(0.76)
        assert bucket_bounds(bucket_index(0.5)) == (0.5, 0.75)
        assert bucket_bounds(bucket_index(0.75)) == (0.75, 1.0)

    def test_non_positive_values_share_underflow_bucket(self):
        assert bucket_index(0.0) == bucket_index(-5.0)
        low, high = bucket_bounds(bucket_index(0.0))
        assert low < 0.0 and high == 0.0

    def test_quantiles_bounded_by_observations(self):
        histogram = MetricsRegistry().histogram("latency")
        values = [0.001 * (i + 1) for i in range(100)]
        for value in values:
            histogram.observe(value)
        p50, p99 = histogram.quantile(0.5), histogram.quantile(0.99)
        assert min(values) <= p50 <= p99 <= max(values)
        # half-octave buckets bound relative error: p50 within [0.025, 0.1]
        assert 0.025 <= p50 <= 0.1

    def test_single_value_quantiles_are_exact(self):
        histogram = MetricsRegistry().histogram("h")
        for _ in range(10):
            histogram.observe(0.042)
        assert histogram.quantile(0.5) == pytest.approx(0.042)
        assert histogram.quantile(0.99) == pytest.approx(0.042)

    def test_quantile_validation_and_empty(self):
        histogram = MetricsRegistry().histogram("h")
        assert histogram.quantile(0.5) == 0.0
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_snapshot_summary(self):
        histogram = MetricsRegistry().histogram("h")
        histogram.observe(1.0)
        histogram.observe(3.0)
        snap = histogram.snapshot()
        assert snap["count"] == 2
        assert snap["sum"] == pytest.approx(4.0)
        assert snap["min"] == 1.0 and snap["max"] == 3.0


class TestPrometheusRendering:
    def _registry(self):
        registry = MetricsRegistry()
        registry.scope("engine").counter("lookups").inc(42)
        registry.scope("cache").gauge("hit_rate").set(0.991)
        h = registry.scope("engine").histogram("queries_per_lookup")
        for value in (0.5, 3, 3, 700):
            h.observe(value)
        return registry

    def test_render_counters_gauges_histograms(self):
        text = self._registry().render_prometheus()
        assert "# HELP pyzdns_engine_lookups" in text
        assert "# TYPE pyzdns_engine_lookups counter" in text
        assert "pyzdns_engine_lookups 42" in text
        assert "# TYPE pyzdns_cache_hit_rate gauge" in text
        assert "pyzdns_cache_hit_rate 0.991" in text
        # exposition-format histogram: cumulative buckets ending at +Inf,
        # plus _sum/_count — no summary quantiles
        assert "# TYPE pyzdns_engine_queries_per_lookup histogram" in text
        assert 'pyzdns_engine_queries_per_lookup_bucket{le="+Inf"} 4' in text
        assert "pyzdns_engine_queries_per_lookup_count 4" in text
        assert "quantile=" not in text

    def test_round_trip_through_parser(self):
        """The rendering must survive a strict exposition-format parser:
        name grammar, TYPE-before-samples, le-ordered cumulative buckets,
        +Inf == _count, _sum/_count presence."""
        families = parse_prometheus(self._registry().render_prometheus())
        assert families["pyzdns_engine_lookups"]["type"] == "counter"
        assert families["pyzdns_engine_lookups"]["samples"][0][2] == 42.0
        hist = families["pyzdns_engine_queries_per_lookup"]
        assert hist["type"] == "histogram"
        buckets = [s for s in hist["samples"] if s[0].endswith("_bucket")]
        counts = [value for _, _, value in buckets]
        assert counts == sorted(counts)  # cumulative
        assert buckets[-1][1]["le"] == "+Inf"
        assert buckets[-1][2] == 4.0

    def test_parser_rejects_malformed_text(self):
        with pytest.raises(ValueError):
            parse_prometheus("9bad_name 1\n")
        with pytest.raises(ValueError):
            parse_prometheus("ok_metric notanumber\n")
        with pytest.raises(ValueError):
            # buckets must be cumulative
            parse_prometheus(
                "# TYPE h histogram\n"
                'h_bucket{le="1"} 5\nh_bucket{le="2"} 3\nh_bucket{le="+Inf"} 5\n'
                "h_sum 4\nh_count 5\n"
            )
        with pytest.raises(ValueError):
            # +Inf bucket must equal _count
            parse_prometheus(
                "# TYPE h histogram\n"
                'h_bucket{le="+Inf"} 4\nh_sum 4\nh_count 5\n'
            )

    def test_merged_fleet_registry_round_trips(self):
        """A multi-shard merged dump (relabelled scopes and all) still
        renders valid exposition text."""
        fleet = MetricsRegistry()
        for shard in range(2):
            worker = MetricsRegistry()
            worker.scope("engine").counter("lookups").inc(10 + shard)
            worker.scope("faults").counter("injected").inc(shard)
            worker.scope("engine").histogram("latency").observe(0.01 * (shard + 1))
            rename = lambda name, s=shard: (
                f"faults.shard{s}.{name[len('faults.'):]}"
                if name.startswith("faults.")
                else name
            )
            fleet.merge_dump(worker.dump(), rename=rename)
        families = parse_prometheus(fleet.render_prometheus())
        assert families["pyzdns_engine_lookups"]["samples"][0][2] == 21.0
        assert "pyzdns_faults_shard0_injected" in families
        assert "pyzdns_faults_shard1_injected" in families

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""
        assert parse_prometheus("") == {}


class TestSpans:
    def test_parent_child_nesting(self):
        tracer = SpanTracer(clock=lambda: 0.0)
        root = tracer.start("lookup", name="example.com")
        child = tracer.start("step", parent=root, depth=0)
        child.finish(status="NOERROR")
        root.finish(status="NOERROR")
        rows = [span.to_json() for span in tracer.spans]
        assert rows[0]["span"] == "step" and rows[0]["parent"] == root.span_id
        assert rows[1]["span"] == "lookup" and rows[1]["parent"] is None

    def test_finish_is_idempotent(self):
        clock = iter([0.0, 1.0, 2.0])
        tracer = SpanTracer(clock=lambda: next(clock))
        span = tracer.start("x")
        span.finish(status="A")
        span.finish(status="B")
        assert span.status == "A" and span.end == 1.0
        assert tracer.finished == 1

    def test_sink_streams_rows(self):
        rows = []
        tracer = SpanTracer(clock=lambda: 0.0, sink=rows.append)
        tracer.start("x", name="a.com").finish(status="NOERROR")
        assert rows == [
            {
                "span": "x",
                "id": 1,
                "parent": None,
                "start": 0.0,
                "end": 0.0,
                "duration": 0.0,
                "status": "NOERROR",
                "name": "a.com",
            }
        ]
        assert tracer.spans == []

    def test_export_jsonl(self):
        tracer = SpanTracer(clock=lambda: 0.0)
        tracer.start("x").finish()
        handle = io.StringIO()
        assert tracer.export_jsonl(handle) == 1
        assert json.loads(handle.getvalue())["span"] == "x"


class TestMachineSpans:
    """Span trees produced by the actual resolution machine — driven by
    scripted responses, including a timeout/retry race."""

    def _resolve(self, responses, config=None):
        """Drive one A lookup where the leaf server yields ``responses``
        (a list; None entries are timeouts) and return the span rows."""
        from tests.test_machine import answer_msg, referral_msg, ROOTS

        tracer = SpanTracer(clock=lambda: 0.0)
        config = config or ResolverConfig(retries=2)
        config.tracer = tracer
        machine = IterativeMachine(
            SelectiveCache(capacity=100), ROOTS, config, random.Random(0)
        )
        script = iter(responses)

        def respond(effect):
            assert isinstance(effect, SendQuery)
            if effect.server_ip in ROOTS:
                return referral_msg("com", ["10.0.0.1"])
            if effect.server_ip == "10.0.0.1":
                return referral_msg("example.com", ["10.1.0.1"])
            return next(script)

        gen = machine.resolve("www.example.com", RRType.A)
        try:
            effect = next(gen)
            while True:
                effect = gen.send(respond(effect))
        except StopIteration as stop:
            result = stop.value
        return result, [span.to_json() for span in tracer.spans]

    def test_clean_lookup_has_nested_query_spans(self):
        from tests.test_machine import answer_msg

        result, rows = self._resolve([answer_msg("www.example.com", [])])
        assert result.status == Status.NOERROR
        lookup = [r for r in rows if r["span"] == "lookup"]
        steps = [r for r in rows if r["span"] == "step"]
        queries = [r for r in rows if r["span"] == "query"]
        assert len(lookup) == 1 and lookup[0]["parent"] is None
        assert len(steps) == 1 and steps[0]["parent"] == lookup[0]["id"]
        assert len(queries) == 3  # root, com, example.com
        assert all(q["parent"] == steps[0]["id"] for q in queries)
        assert [q["try_count"] for q in queries] == [1, 1, 1]
        cache_probes = [r for r in rows if r["span"] == "cache_probe"]
        assert len(cache_probes) == 1 and cache_probes[0]["status"] == "miss"

    def test_timeout_race_spans_record_each_attempt(self):
        from tests.test_machine import answer_msg

        # leaf times out twice, then answers on the third attempt
        result, rows = self._resolve([None, None, answer_msg("www.example.com", [])])
        assert result.status == Status.NOERROR
        leaf = [
            r for r in rows
            if r["span"] == "query" and r.get("name_server") == "10.1.0.1:53"
        ]
        assert [q["try_count"] for q in leaf] == [1, 2, 3]
        assert [q["status"] for q in leaf] == ["TIMEOUT", "TIMEOUT", "NOERROR"]
        # parent step span carries the final outcome
        step = [r for r in rows if r["span"] == "step"][0]
        assert step["status"] == "NOERROR"
        assert all(q["parent"] == step["id"] for q in leaf)

    def test_exhausted_retries_close_every_span(self):
        result, rows = self._resolve([None, None, None])
        assert result.status == Status.ITERATIVE_TIMEOUT
        assert all(row["end"] >= row["start"] for row in rows)
        lookup = [r for r in rows if r["span"] == "lookup"][0]
        assert lookup["status"] == "ITERATIVE_TIMEOUT"


class TestStatusEmitter:
    def _sim_with_records(self, stats, schedule):
        """A simulator that records a completion at each (time, status)."""
        sim = Simulator()
        for when, status in schedule:
            sim.call_later(when, lambda s=status, t=when: stats.record(s, t))
        return sim

    def test_interval_math_on_virtual_clock(self):
        stats = ScanStats()
        lines = []
        sim = self._sim_with_records(
            stats,
            [(0.2, "NOERROR"), (0.4, "NOERROR"), (1.3, "TIMEOUT"), (2.7, "NOERROR")],
        )
        emitter = StatusEmitter(sim, interval=1.0, stats=stats, write=lines.append)
        emitter.start()
        sim.call_later(3.5, emitter.stop)
        sim.run()
        # ticks at t=1, 2, 3: rates are completions per 1s interval
        assert len(lines) == 3
        assert lines[0].startswith("t=1.0s; 2 done; 2.0/s now; 2.0/s avg")
        assert lines[1].startswith("t=2.0s; 3 done; 1.0/s now")
        assert "1 timeouts" in lines[1]
        assert lines[2].startswith("t=3.0s; 4 done; 1.0/s now")

    def test_stop_emits_final_line_and_drains_loop(self):
        stats = ScanStats()
        lines = []
        sim = self._sim_with_records(stats, [(0.5, "NOERROR")])
        emitter = StatusEmitter(sim, interval=10.0, stats=stats, write=lines.append)
        emitter.start()
        sim.call_later(0.6, emitter.stop)
        sim.run()  # would never return if the repeating timer survived
        assert sim.now < 10.0
        assert len(lines) == 1 and "1 done" in lines[0]

    def test_rejects_non_positive_interval(self):
        with pytest.raises(ValueError):
            StatusEmitter(Simulator(), interval=0, stats=ScanStats())

    def test_format_line_shape(self):
        line = format_status_line(
            elapsed=5.0, total=1234, interval_rate=800.0, average_rate=246.8,
            success_rate=0.972, in_flight=50, timeouts=12, retries=34,
            cache_hit_rate=0.991,
        )
        assert line == (
            "t=5.0s; 1234 done; 800.0/s now; 246.8/s avg; 97.2% ok; "
            "50 in-flight; 12 timeouts; 34 retries; cache 99.1%"
        )

    def test_cache_segment_optional(self):
        line = format_status_line(
            elapsed=1.0, total=1, interval_rate=1.0, average_rate=1.0,
            success_rate=1.0, in_flight=0, timeouts=0, retries=0,
            cache_hit_rate=None,
        )
        assert "cache" not in line


class TestMetadata:
    def test_round_trip(self, tmp_path):
        summary = {"total": 25, "statuses": {"NOERROR": 25}}
        metadata = build_run_metadata(
            summary,
            args={"module": "A", "threads": 5, "_private": "dropped"},
            wall_seconds=1.23456,
            virtual_seconds=9.87,
            metrics={"engine.lookups": 25},
        )
        path = tmp_path / "meta.json"
        write_metadata(path, metadata)
        data = json.loads(path.read_text())
        assert data["total"] == 25
        assert data["statuses"] == {"NOERROR": 25}
        assert data["args"] == {"module": "A", "threads": 5}
        assert data["durations"] == {"wall_s": 1.235, "virtual_s": 9.87}
        assert data["metrics"] == {"engine.lookups": 25}
        assert data["tool"]["name"] == "pyzdns-repro"
        assert "profile" not in data

    def test_profile_included_when_present(self):
        metadata = build_run_metadata(
            {"total": 0}, profile={"top": 25, "report": "..."}
        )
        assert metadata["profile"]["top"] == 25


class TestScanStatsRegistryMirror:
    def test_attach_mirrors_records(self):
        registry = MetricsRegistry()
        stats = ScanStats().attach(registry.scope("engine"))
        stats.record("NOERROR", 1.0, queries=3, retries=1)
        stats.record("TIMEOUT", 2.0, queries=6)
        snap = registry.snapshot()
        assert snap["engine.lookups"] == 2
        assert snap["engine.successes"] == 1
        assert snap["engine.queries_sent"] == 9
        assert snap["engine.retries_used"] == 1
        assert snap["engine.status.NOERROR"] == 1
        assert snap["engine.status.TIMEOUT"] == 1
        assert snap["engine.queries_per_lookup"]["count"] == 2

    def test_unattached_stats_register_nothing(self):
        stats = ScanStats()
        stats.record("NOERROR", 1.0)
        assert stats._instruments is None


@pytest.fixture(scope="module")
def small_scan_names():
    from repro.workloads import CorpusConfig, DomainCorpus

    return list(DomainCorpus(CorpusConfig(seed=11)).fqdns(60))


class TestRunnerIntegration:
    def _run(self, names, **kwargs):
        from repro.ecosystem import EcosystemParams, build_internet

        internet = build_internet(params=EcosystemParams(seed=11))
        config = ScanConfig(threads=10, seed=11, **kwargs)
        return ScanRunner(internet, config).run(names)

    def test_metrics_cover_engine_scheduler_cache(self, small_scan_names):
        report = self._run(small_scan_names, metrics=True)
        metrics = report.metrics
        assert metrics["engine.lookups"] == 60
        assert metrics["engine.inflight"] == 0  # all lookups drained
        assert metrics["scheduler.events_executed"] > 0
        assert "scheduler.peak_ready_depth" in metrics
        assert "cache.hit_rate" in metrics
        assert "net.packets_delivered" in metrics or any(
            key.startswith("net.") for key in metrics
        )
        assert report.registry.enabled

    def test_metrics_match_legacy_stats(self, small_scan_names):
        report = self._run(small_scan_names, metrics=True)
        assert report.metrics["engine.queries_sent"] == report.stats.queries_sent
        assert report.metrics["engine.successes"] == report.stats.successes
        statuses = {
            key.rsplit(".", 1)[1]: value
            for key, value in report.metrics.items()
            if key.startswith("engine.status.")
        }
        assert statuses == dict(report.stats.by_status)

    def test_disabled_run_records_nothing(self, small_scan_names):
        report = self._run(small_scan_names)
        assert report.metrics == {}
        assert not report.registry.enabled
        assert report.tracer is None

    def test_status_interval_emits_and_terminates(self, small_scan_names):
        stream = io.StringIO()
        from repro.ecosystem import EcosystemParams, build_internet

        internet = build_internet(params=EcosystemParams(seed=11))
        config = ScanConfig(threads=10, seed=11, status_interval=0.5)
        report = ScanRunner(internet, config, status_stream=stream).run(small_scan_names)
        lines = stream.getvalue().splitlines()
        assert lines, "no status lines emitted"
        assert all("in-flight" in line for line in lines)
        # final line reports the full scan
        assert f"{report.stats.total} done" in lines[-1]

    def test_span_collection_on_report(self, small_scan_names):
        report = self._run(small_scan_names, collect_spans=True)
        tracer = report.tracer
        assert tracer is not None and tracer.finished == tracer.started
        lookups = [s for s in tracer.spans if s.name == "lookup"]
        assert len(lookups) == 60

    def test_deterministic_across_runs(self, small_scan_names):
        first = self._run(small_scan_names, metrics=True)
        second = self._run(small_scan_names, metrics=True)
        assert first.metrics == second.metrics


class TestCliObservability:
    @pytest.fixture()
    def names_file(self, tmp_path):
        from repro.workloads import CorpusConfig, DomainCorpus

        corpus = DomainCorpus(CorpusConfig(seed=3))
        path = tmp_path / "names.txt"
        path.write_text("\n".join(corpus.fqdns(20)))
        return str(path)

    def test_all_three_exports(self, names_file, tmp_path, capsys):
        from repro.framework.cli import main

        meta = tmp_path / "meta.json"
        prom = tmp_path / "metrics.prom"
        spans = tmp_path / "spans.jsonl"
        out = tmp_path / "out.jsonl"
        code = main([
            "A", "-f", names_file, "-o", str(out), "--threads", "5",
            "--seed", "5", "--quiet",
            "--status-interval", "1.0",
            "--metadata-file", str(meta),
            "--metrics-out", str(prom),
            "--spans-file", str(spans),
        ])
        assert code == 0
        # status stream went to stderr
        captured = capsys.readouterr()
        assert "in-flight" in captured.err

        data = json.loads(meta.read_text())
        assert data["total"] == 20
        assert data["args"]["threads"] == 5
        assert data["durations"]["wall_s"] >= 0
        assert data["metrics"]["engine.lookups"] == 20

        text = prom.read_text()
        assert "pyzdns_engine_lookups 20" in text
        assert "pyzdns_scheduler_events_executed" in text
        assert "pyzdns_cache_hit_rate" in text

        rows = [json.loads(line) for line in spans.read_text().splitlines()]
        assert rows and any(row["span"] == "lookup" for row in rows)
        parents = {row["id"] for row in rows}
        assert all(
            row["parent"] in parents for row in rows if row["parent"] is not None
        )

    def test_profile_routed_to_metadata(self, names_file, tmp_path, monkeypatch, capsys):
        from repro.framework.cli import main

        monkeypatch.setenv("REPRO_PROFILE", "5")
        meta = tmp_path / "meta.json"
        code = main([
            "A", "-f", names_file, "-o", str(tmp_path / "o.jsonl"),
            "--threads", "5", "--seed", "5", "--quiet",
            "--metadata-file", str(meta),
        ])
        assert code == 0
        data = json.loads(meta.read_text())
        assert data["profile"]["top"] == 5
        assert "cumulative" in data["profile"]["report"]

    def test_flags_parse(self):
        from repro.framework.cli import build_parser

        args = build_parser().parse_args([
            "A", "--status-interval", "2.5", "--metrics-out", "-",
            "--spans-file", "s.jsonl",
        ])
        assert args.status_interval == 2.5
        assert args.metrics_out == "-"


class TestSelfcheck:
    def test_selfcheck_passes(self, capsys):
        from repro.obs.selfcheck import main

        assert main() == 0
        assert "OK" in capsys.readouterr().out
