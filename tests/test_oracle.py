"""Tests for the differential resolution oracle (``repro.oracle``)."""

import json

import pytest

from repro.core import Resolver
from repro.dnslib import Name, RRType
from repro.ecosystem import EcosystemParams, build_internet
from repro.framework import ScanConfig, ScanRunner
from repro.framework.cli import main as cli_main
from repro.obs import MetricsRegistry
from repro.oracle import (
    DifferentialConfig,
    DifferentialOracle,
    OracleResult,
    ProductionView,
    ReferenceResolver,
    check_one,
    compare_views,
    production_view,
    run_differential,
    shrink_divergence,
)
from repro.oracle.selfcheck import planted_bug_canary, stale_cache_factory
from repro.workloads import CorpusConfig, DomainCorpus

N = Name.from_text
SEED = 2022


@pytest.fixture(scope="module")
def reference():
    return ReferenceResolver(seed=SEED)


@pytest.fixture(scope="module")
def corpus_names():
    return list(DomainCorpus(CorpusConfig(seed=SEED)).fqdns(40))


class TestReferenceResolver:
    def test_deterministic(self, reference, corpus_names):
        first = [reference.resolve(name) for name in corpus_names[:10]]
        second = [reference.resolve(name) for name in corpus_names[:10]]
        assert first == second

    def test_fresh_instance_agrees(self, reference, corpus_names):
        other = ReferenceResolver(seed=SEED)
        for name in corpus_names[:10]:
            assert reference.resolve(name) == other.resolve(name)

    def test_semantic_statuses_present(self, reference, corpus_names):
        statuses = {reference.resolve(name).status for name in corpus_names}
        assert "NOERROR" in statuses  # the corpus contains live names

    def test_nxdomain_for_unregistered(self, reference):
        result = reference.resolve("definitely-not-registered-xyzzy.com")
        assert result.status == "NXDOMAIN"
        assert not result.is_semantic or result.status in ("NOERROR", "NXDOMAIN")

    def test_noerror_carries_answers(self, reference, corpus_names):
        for name in corpus_names:
            result = reference.resolve(name)
            if result.status == "NOERROR" and result.acceptable:
                assert all(isinstance(s, tuple) for s in result.acceptable)
                return
        pytest.fail("no NOERROR result in the corpus slice")

    def test_no_rng_side_effects_on_scan_universe(self, corpus_names):
        """The oracle must build its own universe: resolving through it
        must not advance any RNG stream of a co-existing scan internet
        (that would break byte-identical replay)."""
        internet = build_internet(params=EcosystemParams(seed=SEED))
        resolver = Resolver(internet)
        before = resolver.lookup(N(corpus_names[0]), RRType.A)
        oracle = ReferenceResolver(seed=SEED)
        oracle.resolve(corpus_names[1])
        internet2 = build_internet(params=EcosystemParams(seed=SEED))
        after = Resolver(internet2).lookup(N(corpus_names[0]), RRType.A)
        assert str(before.status) == str(after.status)


class TestCompareViews:
    def _view(self, status="NOERROR", final="www.example.com", terminal=("1.2.3.4",)):
        return ProductionView(
            status=status,
            final_key=N(final).canonical_key(),
            final_name=final,
            terminal=tuple(terminal),
        )

    def _oracle(self, status="NOERROR", final="www.example.com", acceptable=(("1.2.3.4",),)):
        name = N(final)
        return OracleResult(
            name=final,
            qtype=int(RRType.A),
            status=status,
            final_key=name.canonical_key(),
            final_name=final,
            chain=(),
            acceptable=tuple(tuple(s) for s in acceptable),
        )

    def test_agreement(self):
        verdict, _ = compare_views(self._view(), self._oracle())
        assert verdict == "agree"

    def test_production_failure_vs_semantic_oracle_is_inconclusive(self):
        verdict, _ = compare_views(self._view(status="TIMEOUT"), self._oracle())
        assert verdict == "inconclusive"

    def test_both_failures_agree(self):
        verdict, _ = compare_views(
            self._view(status="TIMEOUT"), self._oracle(status="UNREACHABLE")
        )
        assert verdict == "agree"

    def test_semantic_answer_for_unresolvable_name_diverges(self):
        verdict, reason = compare_views(
            self._view(), self._oracle(status="UNREACHABLE")
        )
        assert verdict == "diverge"
        assert "unresolvable" in reason

    def test_status_mismatch_diverges(self):
        verdict, _ = compare_views(self._view(), self._oracle(status="NXDOMAIN"))
        assert verdict == "diverge"

    def test_wrong_answer_set_diverges(self):
        verdict, reason = compare_views(
            self._view(terminal=("9.9.9.9",)), self._oracle()
        )
        assert verdict == "diverge"
        assert "answer set" in reason

    def test_per_ns_inconsistent_answers_accepted(self):
        oracle = self._oracle(acceptable=(("1.2.3.4",), ("5.6.7.8",)))
        assert compare_views(self._view(terminal=("5.6.7.8",)), oracle)[0] == "agree"
        assert compare_views(self._view(terminal=("7.7.7.7",)), oracle)[0] == "diverge"

    def test_wrong_final_target_diverges(self):
        verdict, reason = compare_views(
            self._view(final="other.example.com"), self._oracle()
        )
        assert verdict == "diverge"
        assert "CNAME" in reason

    def test_nxdomain_needs_no_answer_comparison(self):
        verdict, _ = compare_views(
            self._view(status="NXDOMAIN", terminal=()),
            self._oracle(status="NXDOMAIN", acceptable=()),
        )
        assert verdict == "agree"


class TestDifferentialSweep:
    def test_small_sweep_is_clean(self):
        config = DifferentialConfig(
            seed=SEED,
            names=12,
            policies=("selective", "all"),
            evictions=("random",),
            fault_plans=(None, "moderate"),
        )
        report = run_differential(config)
        assert report.ok, [d.reason for d in report.divergences]
        assert report.names_checked == 12 * 4
        # cold + warm per name, plus a cold-vs-warm invariant check
        # whenever both phases produced semantic answers
        assert report.names_checked * 2 <= report.checks <= report.names_checked * 3
        payload = report.to_json()
        assert payload["divergences"] == []
        assert len(payload["combos"]) == 4

    def test_sweep_catches_planted_cache_bug(self):
        config = DifferentialConfig(
            seed=SEED,
            names=10,
            policies=("all",),
            evictions=("random",),
            fault_plans=(None,),
        )
        report = run_differential(config, cache_factory=stale_cache_factory)
        assert not report.ok
        assert any("answer set" in d.reason for d in report.divergences)


class TestShrinker:
    def test_planted_bug_shrinks_to_fault_free_triple(self):
        divergence, minimal = planted_bug_canary(seed=SEED)
        assert divergence is not None
        assert minimal is not None
        assert minimal.reproduced
        assert minimal.plan is None or len(minimal.plan) == 0
        assert minimal.seed == SEED
        payload = minimal.to_json()
        assert payload["name"] == minimal.name

    def test_check_one_clean_name_has_no_divergence(self, corpus_names):
        assert check_one(corpus_names[0], seed=SEED) is None

    def test_nonreproducing_divergence_reported_as_such(self, corpus_names):
        from repro.oracle.harness import Divergence

        ghost = Divergence(
            name=corpus_names[0],
            qtype=int(RRType.A),
            seed=SEED,
            reason="synthetic",
            production={},
            oracle={},
            combo={"policy": "selective", "eviction": "random", "plan": "none",
                   "capacity": 512},
        )
        minimal = shrink_divergence(ghost)
        assert not minimal.reproduced


class TestDifferentialOracleCheck:
    def test_memoised_and_counted(self, corpus_names):
        oracle = DifferentialOracle(seed=SEED)
        internet = build_internet(params=EcosystemParams(seed=SEED))
        resolver = Resolver(internet)
        qname = N(corpus_names[0])
        result = resolver.lookup(qname, RRType.A)
        assert oracle.check(qname, RRType.A, result) is None
        assert oracle.check(qname, RRType.A, result) is None  # memo path
        assert oracle.checked == 2
        assert oracle.agreed + oracle.inconclusive == 2
        assert oracle.divergences == 0

    def test_publish_metrics(self, corpus_names):
        oracle = DifferentialOracle(seed=SEED)
        internet = build_internet(params=EcosystemParams(seed=SEED))
        resolver = Resolver(internet)
        qname = N(corpus_names[0])
        oracle.check(qname, RRType.A, resolver.lookup(qname, RRType.A))
        registry = MetricsRegistry(enabled=True)
        oracle.publish_metrics(registry.scope("oracle"))
        snapshot = registry.snapshot()
        assert snapshot["oracle.checked"] == 1
        assert "oracle.divergence" in snapshot


class TestScanIntegration:
    def test_runner_shadows_every_kth_lookup(self, corpus_names):
        internet = build_internet(params=EcosystemParams(seed=SEED))
        config = ScanConfig(seed=SEED, oracle_check=3)
        rows = []
        report = ScanRunner(internet, config, sink=rows.append).run(corpus_names[:15])
        stats = report.oracle_stats
        assert stats is not None
        assert stats["checked"] == 5  # every 3rd of 15
        assert stats["divergences"] == 0
        assert not any(row.get("oracle_divergence") for row in rows)

    def test_runner_oracle_off_by_default(self, corpus_names):
        internet = build_internet(params=EcosystemParams(seed=SEED))
        report = ScanRunner(internet, ScanConfig(seed=SEED)).run(corpus_names[:3])
        assert report.oracle_stats is None

    def test_runner_rejects_recursive_modes(self, corpus_names):
        internet = build_internet(params=EcosystemParams(seed=SEED))
        config = ScanConfig(seed=SEED, mode="google", oracle_check=1)
        with pytest.raises(ValueError):
            ScanRunner(internet, config).run(corpus_names[:2])


class TestCLI:
    @pytest.fixture()
    def names_file(self, tmp_path):
        path = tmp_path / "names.txt"
        path.write_text("\n".join(DomainCorpus(CorpusConfig(seed=SEED)).fqdns(10)))
        return str(path)

    def test_oracle_check_flag(self, names_file, tmp_path):
        out = tmp_path / "rows.jsonl"
        meta = tmp_path / "meta.json"
        code = cli_main([
            "ALOOKUP", "-f", names_file, "-o", str(out), "--quiet",
            "--oracle-check", "1", "--metadata-file", str(meta),
            "--seed", str(SEED),
        ])
        assert code == 0
        summary = json.loads(meta.read_text())
        assert summary["oracle"]["checked"] == 10
        assert summary["oracle"]["divergences"] == 0

    def test_oracle_check_usage_errors(self, names_file):
        for argv in (
            ["A", "-f", names_file, "--oracle-check", "0"],
            ["A", "-f", names_file, "--oracle-check", "2", "--mode", "google"],
            ["A", "-f", names_file, "--oracle-check", "2", "--processes", "2"],
        ):
            with pytest.raises(SystemExit) as err:
                cli_main(argv)
            assert err.value.code == 2
