"""Tests for the multi-process shard executor and its building blocks.

Covers the determinism contract (same seed, any process count, identical
merged bytes), the exact-partition property of ``io.shard``, the merge
semantics of stats and metrics, and the CLI's eager validation of bad
shard/process topologies (clean usage errors, never tracebacks).
"""

import io as io_module
import json
import random

import pytest

from repro.framework import FleetView, ScanConfig, run_parallel_scan
from repro.framework.cli import main
from repro.framework.io import shard
from repro.framework.stats import ScanStats
from repro.obs import MetricsRegistry, parse_prometheus
from repro.workloads import CorpusConfig, DomainCorpus


# ---------------------------------------------------------------------------
# io.shard: exact partition property
# ---------------------------------------------------------------------------


class TestShardPartition:
    def test_partitions_exactly_randomised(self):
        """For any (size, shards): shards are pairwise disjoint and their
        union, re-interleaved by position, is exactly the input."""
        rng = random.Random(2024)
        for _ in range(50):
            size = rng.randrange(0, 200)
            shards = rng.randrange(1, 12)
            items = [f"item-{i}" for i in range(size)]
            parts = [list(shard(items, shards, k)) for k in range(shards)]
            # pairwise disjoint
            seen = set()
            for part in parts:
                overlap = seen & set(part)
                assert not overlap, f"items in two shards: {overlap}"
                seen.update(part)
            # union == input, and positions interleave back exactly
            assert sorted(seen) == sorted(items)
            reassembled = [None] * size
            for k, part in enumerate(parts):
                for j, item in enumerate(part):
                    reassembled[j * shards + k] = item
            assert reassembled == items

    def test_single_shard_is_identity(self):
        items = ["a", "b", "c"]
        assert list(shard(items, 1, 0)) == items

    def test_more_shards_than_items(self):
        items = ["a", "b"]
        parts = [list(shard(items, 5, k)) for k in range(5)]
        assert parts == [["a"], ["b"], [], [], []]

    def test_validation_is_eager(self):
        """A bad spec must raise at the call, not at the first next()."""
        with pytest.raises(ValueError):
            shard(["a"], 0, 0)
        with pytest.raises(ValueError):
            shard(["a"], 2, 2)
        with pytest.raises(ValueError):
            shard(["a"], 2, -1)

    def test_generator_preserves_order(self):
        items = [str(i) for i in range(10)]
        assert list(shard(items, 3, 1)) == ["1", "4", "7"]


# ---------------------------------------------------------------------------
# merge semantics: ScanStats and MetricsRegistry
# ---------------------------------------------------------------------------


class TestScanStatsMerge:
    def _stats(self, statuses, start, finish):
        stats = ScanStats(started_at=start)
        now = start
        for status in statuses:
            now += 0.5
            stats.record(status, now, queries=2, retries=1)
        stats.finished_at = finish
        return stats

    def test_merge_sums_counts_and_statuses(self):
        a = self._stats(["NOERROR", "TIMEOUT"], start=0.0, finish=2.0)
        b = self._stats(["NOERROR", "NOERROR", "NXDOMAIN"], start=0.0, finish=5.0)
        a.merge(b)
        assert a.total == 5
        assert a.by_status["NOERROR"] == 3
        assert a.by_status["TIMEOUT"] == 1
        assert a.by_status["NXDOMAIN"] == 1
        assert a.queries_sent == 10
        assert a.retries_used == 5
        # merged duration = the slowest shard (virtual clocks all start
        # at zero and shards run concurrently)
        assert a.duration == 5.0
        assert len(a.completion_times) == 5

    def test_state_round_trip(self):
        stats = self._stats(["NOERROR", "SERVFAIL"], start=0.0, finish=3.0)
        clone = ScanStats.from_state(stats.to_state())
        assert clone.to_json() == stats.to_json()
        assert clone.completion_times == stats.completion_times


class TestMetricsMerge:
    def _shard_registry(self, base):
        registry = MetricsRegistry(enabled=True)
        registry.counter("lookups.total").inc(base)
        registry.gauge("queue.depth").set(base)
        hist = registry.histogram("lookup.seconds")
        for value in (0.01 * base, 0.1 * base, 1.0):
            hist.observe(value)
        registry.scope("faults").counter("injected").inc(base)
        return registry

    def test_counters_and_gauges_sum(self):
        merged = MetricsRegistry(enabled=True)
        merged.merge_dump(self._shard_registry(2).dump())
        merged.merge_dump(self._shard_registry(3).dump())
        snap = merged.snapshot()
        assert snap["lookups.total"] == 5
        assert snap["queue.depth"] == 5

    def test_histogram_buckets_add(self):
        merged = MetricsRegistry(enabled=True)
        merged.merge_dump(self._shard_registry(2).dump())
        merged.merge_dump(self._shard_registry(3).dump())
        hist = merged.snapshot()["lookup.seconds"]
        assert hist["count"] == 6
        # min/max widen across shards
        assert hist["min"] == pytest.approx(0.02)
        assert hist["max"] == pytest.approx(1.0)

    def test_relabel_renames_scoped_metrics(self):
        merged = MetricsRegistry(enabled=True)
        for index in (0, 1):
            merged.merge_dump(
                self._shard_registry(1).dump(),
                rename=lambda name, k=index: (
                    f"faults.shard{k}.{name[len('faults.'):]}"
                    if name.startswith("faults.")
                    else name
                ),
            )
        snap = merged.snapshot()
        assert snap["faults.shard0.injected"] == 1
        assert snap["faults.shard1.injected"] == 1
        assert "faults.injected" not in snap
        # unscoped metrics still summed under the original name
        assert snap["lookups.total"] == 2

    def test_merge_into_disabled_registry_is_noop(self):
        merged = MetricsRegistry(enabled=False)
        merged.merge_dump(self._shard_registry(2).dump())
        assert merged.snapshot() == {}


# ---------------------------------------------------------------------------
# the executor: determinism across process counts
# ---------------------------------------------------------------------------


NAMES = 48


@pytest.fixture(scope="module")
def corpus():
    return list(DomainCorpus(CorpusConfig(seed=91)).fqdns(NAMES))


def _config(metrics=False):
    return ScanConfig(
        module="A", mode="iterative", threads=50, seed=11, metrics=metrics
    )


def _run(corpus, processes, shards=4, metrics=False):
    out = io_module.StringIO()
    report = run_parallel_scan(
        corpus,
        _config(metrics=metrics),
        processes=processes,
        out=out,
        shards=shards,
        collect_metrics=metrics,
        add_timestamp=False,
    )
    return out.getvalue(), report


class TestParallelDeterminism:
    def test_merged_output_independent_of_process_count(self, corpus):
        """The determinism contract: for fixed (seed, shards) the merged
        bytes, stats, and metrics are identical for any process count."""
        out_1, report_1 = _run(corpus, processes=1, metrics=True)
        out_4, report_4 = _run(corpus, processes=4, metrics=True)
        assert out_1 == out_4
        assert out_1.count("\n") == NAMES
        assert report_1.stats.to_json() == report_4.stats.to_json()
        # topology gauges describe the run, not the scan: exclude them
        snap_1 = {k: v for k, v in report_1.metrics.items() if not k.startswith("mp.")}
        snap_4 = {k: v for k, v in report_4.metrics.items() if not k.startswith("mp.")}
        assert snap_1 == snap_4

    def test_rows_cover_every_name_exactly_once(self, corpus):
        out, report = _run(corpus, processes=2)
        names = [json.loads(line)["name"] for line in out.splitlines()]
        assert sorted(names) == sorted(corpus)
        assert report.rows_written == NAMES
        assert report.stats.total == NAMES

    def test_output_is_shard_grouped(self, corpus):
        """Order normalisation: the merged stream is the concatenation
        of the per-shard streams in shard-index order."""
        shards = 4
        out, _ = _run(corpus, processes=2, shards=shards)
        names = [json.loads(line)["name"] for line in out.splitlines()]
        expected = []
        for k in range(shards):
            expected.extend(shard(corpus, shards, k))
        assert sorted(names[:12]) == sorted(expected[:12])  # shard 0 first
        assert sorted(names) == sorted(expected)

    def test_shard_summaries_cover_topology(self, corpus):
        _, report = _run(corpus, processes=3, shards=5)
        assert report.processes == 3
        assert report.shards == 5
        assert [s["shard"] for s in report.shard_summaries] == [0, 1, 2, 3, 4]
        assert sum(s["total"] for s in report.shard_summaries) == NAMES

    def test_processes_clamped_to_shards(self, corpus):
        _, report = _run(corpus, processes=8, shards=2)
        assert report.processes == 2

    def test_worker_crash_raises_with_traceback(self, corpus):
        out = io_module.StringIO()
        config = _config()
        config.module = "A"
        with pytest.raises(RuntimeError, match="worker"):
            run_parallel_scan(
                corpus,
                config,
                processes=2,
                out=out,
                shards=2,
                fault_plan="no-such-plan",  # resolve_plan raises in-worker
                add_timestamp=False,
            )


# ---------------------------------------------------------------------------
# spans under --processes: shard-tagged, merged shard-ordered
# ---------------------------------------------------------------------------


class TestParallelSpans:
    def _run_spans(self, corpus, processes, shards=4):
        out, spans = io_module.StringIO(), io_module.StringIO()
        report = run_parallel_scan(
            corpus,
            _config(),
            processes=processes,
            out=out,
            shards=shards,
            add_timestamp=False,
            collect_spans=True,
            span_out=spans,
        )
        return spans.getvalue(), report

    def test_span_stream_independent_of_process_count(self, corpus):
        spans_1, report_1 = self._run_spans(corpus, processes=1)
        spans_4, report_4 = self._run_spans(corpus, processes=4)
        assert spans_1 == spans_4
        assert report_1.spans_written == report_4.spans_written > 0

    def test_spans_are_shard_tagged_and_shard_ordered(self, corpus):
        shards = 4
        text, report = self._run_spans(corpus, processes=2, shards=shards)
        rows = [json.loads(line) for line in text.splitlines()]
        assert len(rows) == report.spans_written
        tags = [row["shard"] for row in rows]
        assert set(tags) == set(range(shards))
        # merged stream is grouped by shard index, shard 0 first
        assert tags == sorted(tags)

    def test_span_count_matches_single_process_equivalent(self, corpus):
        """The executor must not lose or duplicate spans: one lookup
        root span per name, exactly as a 1-process scan produces."""
        text, _ = self._run_spans(corpus, processes=3)
        rows = [json.loads(line) for line in text.splitlines()]
        lookups = [row for row in rows if row["span"] == "lookup"]
        assert len(lookups) == NAMES
        names = sorted(row["name"] for row in lookups)
        assert names == sorted(corpus)


# ---------------------------------------------------------------------------
# streaming telemetry: deltas fold into a live FleetView
# ---------------------------------------------------------------------------


class TestFleetTelemetry:
    def test_fleet_view_sees_every_shard_complete(self, corpus):
        fleet = FleetView(run_info={"module": "A"})
        out = io_module.StringIO()
        run_parallel_scan(
            corpus,
            _config(),
            processes=2,
            out=out,
            shards=4,
            add_timestamp=False,
            fleet_view=fleet,
        )
        snapshot = fleet.status_snapshot()
        assert snapshot["fleet"]["done"] == NAMES
        assert snapshot["fleet"]["target"] == NAMES
        assert snapshot["fleet"]["complete"] is True
        assert snapshot["fleet"]["shards_complete"] == 4
        assert snapshot["run"]["module"] == "A"
        rows = snapshot["shards"]
        assert [row["shard"] for row in rows] == [0, 1, 2, 3]
        for row in rows:
            assert row["complete"] is True
            assert row["done"] == row["target"]
            assert row["seq"] >= 1
        assert sum(row["done"] for row in rows) == NAMES

    def test_fleet_prometheus_renders_merged_registry(self, corpus):
        fleet = FleetView()
        out = io_module.StringIO()
        run_parallel_scan(
            corpus,
            _config(),
            processes=2,
            out=out,
            shards=2,
            add_timestamp=False,
            fleet_view=fleet,
        )
        families = parse_prometheus(fleet.prometheus())
        assert families["pyzdns_engine_lookups"]["samples"][0][2] == float(NAMES)

    def test_deltas_do_not_perturb_merged_output(self, corpus):
        """The live path reads, never writes: output bytes are identical
        with and without a fleet view attached."""
        plain, _ = _run(corpus, processes=2)
        fleet = FleetView()
        out = io_module.StringIO()
        run_parallel_scan(
            corpus,
            _config(),
            processes=2,
            out=out,
            shards=4,
            add_timestamp=False,
            fleet_view=fleet,
        )
        assert out.getvalue() == plain

    def test_every_task_final_delta_observed(self, corpus):
        """Regression for the final-delta race: each worker must flush
        its complete=True delta *before* the pipe sentinel, and the
        runner must emit that final delta after end-of-run metric
        publishing.  If either ordering slips, the fastest-finishing
        task's terminal state silently never reaches the fleet."""
        for processes in (1, 2):
            fleet = FleetView()
            out = io_module.StringIO()
            run_parallel_scan(
                corpus,
                _config(),
                processes=processes,
                out=out,
                shards=4,
                steal_quantum=4,
                add_timestamp=False,
                fleet_view=fleet,
            )
            snapshot = fleet.status_snapshot()
            assert snapshot["fleet"]["complete"] is True
            assert snapshot["fleet"]["done"] == NAMES
            rows = snapshot["shards"]
            assert len(rows) == 4
            for row in rows:
                assert row["complete"] is True, row
                assert row["done"] == row["target"]
                assert row["segments_done"] == row["segments"] == 3
            # The merged live registry is built purely from deltas; a
            # dropped final delta loses that task's tail of lookups.
            families = parse_prometheus(fleet.prometheus())
            lookups = sum(
                value
                for _, _, value in families["pyzdns_engine_lookups"]["samples"]
            )
            assert lookups == float(NAMES)

    def test_fleet_status_line_carries_target(self, corpus):
        """The parent's fleet-wide status line shows done/target (and an
        eta once a rate exists)."""
        out, status = io_module.StringIO(), io_module.StringIO()
        run_parallel_scan(
            corpus,
            _config(),
            processes=2,
            out=out,
            shards=4,
            add_timestamp=False,
            status_interval=0.02,
            status_stream=status,
        )
        for line in status.getvalue().splitlines():
            assert f"/{NAMES} done" in line


# ---------------------------------------------------------------------------
# CLI: bad topologies exit as clean usage errors
# ---------------------------------------------------------------------------


class TestCliValidation:
    def _expect_usage_error(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2  # argparse usage error, no traceback
        return capsys.readouterr().err

    def test_shards_must_be_positive(self, capsys):
        err = self._expect_usage_error(["A", "--shards", "0"], capsys)
        assert "--shards" in err

    def test_shard_index_in_range(self, capsys):
        err = self._expect_usage_error(["A", "--shards", "2", "--shard", "2"], capsys)
        assert "--shard" in err

    def test_negative_shard_index(self, capsys):
        err = self._expect_usage_error(["A", "--shards", "2", "--shard", "-1"], capsys)
        assert "--shard" in err

    def test_processes_must_be_positive(self, capsys):
        err = self._expect_usage_error(["A", "--processes", "0"], capsys)
        assert "--processes" in err

    def test_mp_shards_must_be_positive(self, capsys):
        err = self._expect_usage_error(
            ["A", "--processes", "2", "--mp-shards", "0"], capsys
        )
        assert "--mp-shards" in err

    def test_mp_shards_requires_processes(self, capsys):
        err = self._expect_usage_error(["A", "--mp-shards", "4"], capsys)
        assert "--mp-shards requires --processes" in err

    def test_processes_rejects_live_resolver(self, capsys):
        err = self._expect_usage_error(
            ["A", "--processes", "2", "--live-resolver", "127.0.0.1:53"], capsys
        )
        assert "simulated" in err

    def test_http_port_rejects_live_resolver(self, capsys):
        err = self._expect_usage_error(
            ["A", "--http-port", "0", "--live-resolver", "127.0.0.1:53"], capsys
        )
        assert "--http-port" in err

    def test_http_port_range_checked(self, capsys):
        err = self._expect_usage_error(["A", "--http-port", "70000"], capsys)
        assert "--http-port" in err

    def test_unknown_module_is_clean(self, capsys):
        self._expect_usage_error(["NOSUCHMODULE"], capsys)


class TestCliParallel:
    """End-to-end through the CLI entry point."""

    def test_cli_determinism_across_process_counts(self, tmp_path, corpus):
        names_file = tmp_path / "names.txt"
        names_file.write_text("\n".join(corpus) + "\n")
        outputs = []
        for tag, procs in (("p1", "1"), ("p2", "2")):
            out = tmp_path / f"out-{tag}.jsonl"
            code = main(
                [
                    "A",
                    "--input-file", str(names_file),
                    "--output-file", str(out),
                    "--processes", procs,
                    "--mp-shards", "3",
                    "--no-timestamps",
                    "--quiet",
                    "--seed", "7",
                    "--threads", "50",
                ]
            )
            assert code == 0
            outputs.append(out.read_bytes())
        assert outputs[0] == outputs[1]
        assert outputs[0].count(b"\n") == NAMES
