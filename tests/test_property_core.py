"""Property-based tests for core data structures and invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Delegation, SelectiveCache
from repro.dnslib import Name
from repro.net import CPUModel, Simulator, TokenBucket

zone_names = st.integers(min_value=0, max_value=500).map(
    lambda i: Name.from_text(f"zone-{i}.com")
)

operations = st.lists(
    st.tuples(zone_names, st.booleans()),  # (zone, is_insert)
    min_size=1,
    max_size=200,
)


def delegation_for(zone: Name) -> Delegation:
    ns = Name.from_text("ns1").concatenate(zone)
    return Delegation(zone=zone, ns_names=(ns,), glue=((ns, "10.0.0.1"),))


class TestCacheInvariants:
    @given(operations, st.integers(min_value=1, max_value=50),
           st.sampled_from(["random", "lru"]))
    @settings(max_examples=60)
    def test_capacity_never_exceeded(self, ops, capacity, eviction):
        cache = SelectiveCache(capacity=capacity, eviction=eviction, seed=1)
        for zone, is_insert in ops:
            if is_insert:
                cache.put_delegation(delegation_for(zone))
            else:
                cache.get_delegation(zone)
            assert len(cache) <= capacity

    @given(operations)
    @settings(max_examples=60)
    def test_get_returns_last_put(self, ops):
        cache = SelectiveCache(capacity=10_000)  # never evicts here
        expected = {}
        for zone, _ in ops:
            entry = delegation_for(zone)
            cache.put_delegation(entry)
            expected[zone.canonical_key()] = entry
        for zone, _ in ops:
            assert cache.get_delegation(zone) == expected[zone.canonical_key()]

    @given(operations, st.integers(min_value=1, max_value=30))
    @settings(max_examples=40)
    def test_bookkeeping_consistent_under_churn(self, ops, capacity):
        cache = SelectiveCache(capacity=capacity, eviction="random", seed=3)
        for zone, _ in ops:
            cache.put_delegation(delegation_for(zone))
            # internal key list and table must agree at all times
            assert len(cache._keys) == len(cache._entries)
            assert set(cache._keys) == set(cache._entries)

    @given(st.lists(zone_names, min_size=1, max_size=50))
    @settings(max_examples=40)
    def test_best_delegation_is_deepest_ancestor(self, zones):
        cache = SelectiveCache(capacity=10_000)
        for zone in zones:
            cache.put_delegation(delegation_for(zone))
        for zone in zones:
            query = Name.from_text("www").concatenate(zone)
            best = cache.best_delegation(query)
            assert best is not None
            assert query.is_subdomain_of(best.zone)


class TestSimulatorInvariants:
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0,
                              allow_nan=False), min_size=1, max_size=100))
    @settings(max_examples=50)
    def test_events_fire_in_time_order(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.call_later(delay, lambda d=delay: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(st.lists(st.floats(min_value=0.001, max_value=1.0,
                              allow_nan=False), min_size=1, max_size=60),
           st.integers(min_value=1, max_value=8))
    @settings(max_examples=40)
    def test_cpu_conserves_work(self, costs, cores):
        """Total busy time equals the sum of submitted work, and the
        makespan is at least busy/cores (no work is lost or invented)."""
        sim = Simulator()
        cpu = CPUModel(sim, cores=cores)

        def worker(cost):
            yield cpu.execute(cost)

        sim.run_all(worker(c) for c in costs)
        assert cpu.busy_seconds == sum(costs)
        assert sim.now >= sum(costs) / cores - 1e-9
        assert sim.now <= sum(costs) + 1e-9

    @given(st.lists(st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
                    min_size=1, max_size=200),
           st.floats(min_value=0.5, max_value=100.0))
    @settings(max_examples=40)
    def test_token_bucket_never_exceeds_budget(self, times, rate):
        bucket = TokenBucket(rate=rate, burst=rate)
        allowed = 0
        for now in sorted(times):
            allowed += bucket.allow(now)
        horizon = max(times)
        # can never allow more than burst + rate * elapsed
        assert allowed <= rate + rate * horizon + 1e-6
