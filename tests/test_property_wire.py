"""Property-based tests (hypothesis) for the wire codec."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dnslib import (
    DNSClass,
    Flags,
    Message,
    Name,
    Opcode,
    Question,
    Rcode,
    ResourceRecord,
    RRType,
    WireError,
    WireReader,
    WireWriter,
)
from repro.dnslib.rdata.address import A, AAAA
from repro.dnslib.rdata.names import CNAME, NS
from repro.dnslib.rdata.security import CAA
from repro.dnslib.rdata.text import TXT
from repro.dnslib.rdata._util import decode_type_bitmap, encode_type_bitmap

labels = st.binary(min_size=1, max_size=63)
names = st.builds(
    Name,
    st.lists(labels, min_size=0, max_size=8).filter(
        lambda ls: 1 + sum(len(l) + 1 for l in ls) <= 255
    ),
)

hostname_labels = st.text(alphabet=string.ascii_lowercase + string.digits, min_size=1, max_size=12)
hostnames = st.builds(
    lambda parts: Name([p.encode() for p in parts]),
    st.lists(hostname_labels, min_size=1, max_size=5),
)


@given(names)
def test_name_wire_roundtrip(name):
    writer = WireWriter()
    writer.write_name(name)
    assert WireReader(writer.getvalue()).read_name() == name


@given(names)
def test_name_text_roundtrip(name):
    assert Name.from_text(name.to_text()) == name


@given(st.lists(names, min_size=1, max_size=6))
def test_compressed_sequence_roundtrip(name_list):
    writer = WireWriter()
    for name in name_list:
        writer.write_name(name)
    reader = WireReader(writer.getvalue())
    for name in name_list:
        assert reader.read_name() == name
    assert reader.at_end()


@given(names, names)
def test_subdomain_of_concatenation(prefix, suffix):
    try:
        joined = prefix.concatenate(suffix)
    except Exception:
        return  # combined name too long: nothing to check
    assert joined.is_subdomain_of(suffix)


@given(st.lists(st.integers(min_value=0, max_value=0xFFFF), max_size=40))
def test_type_bitmap_roundtrip(types):
    expected = tuple(sorted(set(types)))
    assert decode_type_bitmap(encode_type_bitmap(tuple(types))) == expected


@given(st.binary(max_size=300))
def test_arbitrary_bytes_never_crash_decoder(data):
    """Malformed packets must raise WireError, never anything else."""
    try:
        Message.from_wire(data)
    except WireError:
        pass


@given(
    st.integers(min_value=0, max_value=0xFFFF),
    st.booleans(),
    st.booleans(),
    st.booleans(),
    st.sampled_from([r for r in Rcode if r < 16]),  # >15 needs EDNS extended rcode
)
def test_flags_roundtrip(txid, response, rd, ra, rcode):
    flags = Flags(response=response, recursion_desired=rd, recursion_available=ra, rcode=rcode)
    message = Message(id=txid, flags=flags, questions=[Question(Name.from_text("a.b"), RRType.A)])
    decoded = Message.from_wire(message.to_wire())
    assert decoded.id == txid
    assert decoded.flags == flags


rdatas = st.one_of(
    st.builds(A, st.integers(0, 2**32 - 1).map(lambda v: f"{v >> 24}.{(v >> 16) & 255}.{(v >> 8) & 255}.{v & 255}")),
    st.builds(AAAA, st.integers(0, 2**128 - 1).map(lambda v: __import__("ipaddress").IPv6Address(v).compressed)),
    st.builds(NS, hostnames),
    st.builds(CNAME, hostnames),
    st.builds(TXT, st.lists(st.binary(max_size=255), min_size=1, max_size=3)),
    st.builds(
        CAA,
        st.integers(0, 255),
        st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=10).map(str.encode),
        st.binary(max_size=100),
    ),
)

records = st.builds(
    lambda name, rdata, ttl: ResourceRecord(name, rdata.rrtype, DNSClass.IN, ttl, rdata),
    hostnames,
    rdatas,
    st.integers(0, 2**31 - 1),
)


@settings(max_examples=50)
@given(
    st.integers(0, 0xFFFF),
    hostnames,
    st.lists(records, max_size=5),
    st.lists(records, max_size=3),
    st.lists(records, max_size=3),
)
def test_message_roundtrip(txid, qname, answers, authorities, additionals):
    message = Message(
        id=txid,
        flags=Flags(response=True, opcode=Opcode.QUERY),
        questions=[Question(qname, RRType.A)],
        answers=answers,
        authorities=authorities,
        additionals=additionals,
    )
    decoded = Message.from_wire(message.to_wire())
    assert decoded.answers == answers
    assert decoded.authorities == authorities
    assert decoded.additionals == additionals
    assert decoded.question.name == qname


# --------------------------------------------------------------------------
# encode -> decode -> re-encode byte stability (the fast-path codec must
# be a bijection on everything it produces, or the wire-validation modes
# would drift from the object path)


def _all_sample_records():
    from repro.dnslib.rdata.misc import LOC
    from repro.dnslib.rdata.svcb import HTTPS, SVCB

    from .rdata_samples import SAMPLES

    samples = dict(SAMPLES)
    samples.setdefault(RRType.LOC, [LOC(2**31 + 3_600_000, 2**31 - 7_200_000, 10_050_000)])
    samples.setdefault(RRType.SVCB, [SVCB(1, Name.from_text("svc.example.com"), ((1, b"\x02h2"),))])
    samples.setdefault(RRType.HTTPS, [HTTPS(0, Name.from_text("alias.example.com"))])

    owner = Name.from_text("records.example.com")
    out = []
    for rrtype, instances in sorted(samples.items(), key=lambda kv: int(kv[0])):
        for rdata in instances:
            out.append(ResourceRecord(owner, rrtype, DNSClass.IN, 300, rdata))
    return out


def test_reencode_identical_all_registered_types():
    """Every registered RDATA codec survives encode→decode→re-encode
    byte-identically (compression on: Message.to_wire's path)."""
    from repro.dnslib.rdata import registered_types

    records = _all_sample_records()
    covered = {int(r.rrtype) for r in records}
    missing = set(registered_types()) - covered
    assert not missing, f"rdata_samples.py lacks samples for type codes {sorted(missing)}"

    for record in records:
        message = Message(
            id=0x2222,
            flags=Flags(response=True),
            questions=[Question(Name.from_text("q.example.com"), record.rrtype)],
            answers=[record],
        )
        first = message.to_wire()
        decoded = Message.from_wire(first)
        second = decoded.to_wire()
        assert second == first, f"re-encode drift for {record.rrtype!r}"


def test_reencode_identical_without_compression():
    """The same bijection holds with name compression disabled."""
    for record in _all_sample_records():
        writer = WireWriter(enable_compression=False)
        record.to_wire(writer)
        first = writer.getvalue()
        decoded = ResourceRecord.from_wire(WireReader(first))
        rewriter = WireWriter(enable_compression=False)
        decoded.to_wire(rewriter)
        assert rewriter.getvalue() == first, f"uncompressed drift for {record.rrtype!r}"


@settings(max_examples=100)
@given(st.lists(names, min_size=1, max_size=8), st.booleans())
def test_name_sequence_reencode_identical(name_list, compress):
    """Random (seeded by hypothesis) name sequences re-encode to the
    same bytes after a decode pass, with and without compression."""
    writer = WireWriter(enable_compression=compress)
    for name in name_list:
        writer.write_name(name)
    first = writer.getvalue()
    reader = WireReader(first)
    decoded = [reader.read_name() for _ in name_list]
    rewriter = WireWriter(enable_compression=compress)
    for name in decoded:
        rewriter.write_name(name)
    assert rewriter.getvalue() == first


@settings(max_examples=60)
@given(
    st.integers(0, 0xFFFF),
    hostnames,
    st.lists(records, min_size=1, max_size=6),
)
def test_message_reencode_identical(txid, qname, answers):
    message = Message(
        id=txid,
        flags=Flags(response=True, authoritative=True),
        questions=[Question(qname, RRType.A)],
        answers=answers,
    )
    first = message.to_wire()
    second = Message.from_wire(first).to_wire()
    assert second == first


# --------------------------------------------------------------------------
# truncation robustness: a scanner on a hostile Internet sees cut-off
# datagrams constantly (UDP truncation, the fault injector's Truncate/
# Garbage directives).  Every *prefix* of a valid message must either
# decode cleanly or raise WireError — never a different exception, never
# a hang.


@settings(max_examples=40)
@given(
    st.integers(0, 0xFFFF),
    hostnames,
    st.lists(records, max_size=4),
    st.data(),
)
def test_every_prefix_decodes_or_raises(txid, qname, answers, data):
    message = Message(
        id=txid,
        flags=Flags(response=True),
        questions=[Question(qname, RRType.A)],
        answers=answers,
    )
    wire = message.to_wire()
    cut = data.draw(st.integers(min_value=0, max_value=len(wire)))
    try:
        Message.from_wire(wire[:cut])
    except WireError:
        pass


def test_all_prefixes_of_reference_message():
    """Exhaustive byte-slice sweep of one representative response —
    deterministic companion to the sampled hypothesis property."""
    qname = Name.from_text("www.example.com")
    message = Message(
        id=0x1234,
        flags=Flags(response=True, authoritative=True),
        questions=[Question(qname, RRType.A)],
        answers=[ResourceRecord(qname, RRType.A, DNSClass.IN, 300, A("93.0.0.1"))],
        authorities=[
            ResourceRecord(
                Name.from_text("example.com"), RRType.NS, DNSClass.IN, 300,
                NS(Name.from_text("ns1.example.com")),
            )
        ],
    )
    wire = message.to_wire()
    decoded = 0
    for cut in range(len(wire) + 1):
        try:
            Message.from_wire(wire[:cut])
            decoded += 1
        except WireError:
            pass
    # only the complete packet parses: every counted section is present
    assert decoded == 1


@given(st.binary(max_size=64))
def test_compression_pointer_fuzz_terminates(prefix):
    """Packets whose name fields are compression pointers into arbitrary
    places (including each other) must decode-or-raise, not loop."""
    # craft a header claiming one question, then arbitrary bytes ending
    # in a pointer back into the header region
    header = (0x1234).to_bytes(2, "big") + b"\x80\x00" + b"\x00\x01" + b"\x00\x00" * 3
    for offset in (0, 2, 12, 13):
        wire = header + prefix + bytes([0xC0, offset]) + b"\x00\x01\x00\x01"
        try:
            Message.from_wire(wire)
        except WireError:
            pass


def _header(qd=0, an=0, ns=0, ar=0, txid=0x1234, flags=0x8400) -> bytes:
    return (
        txid.to_bytes(2, "big")
        + flags.to_bytes(2, "big")
        + qd.to_bytes(2, "big")
        + an.to_bytes(2, "big")
        + ns.to_bytes(2, "big")
        + ar.to_bytes(2, "big")
    )


_QNAME = b"\x01a\x07example\x00"  # "a.example" at offset 12, 11 bytes


def _null_rr(rdata: bytes) -> bytes:
    """A root-owned NULL record carrying raw bytes — the opaque rdata is
    kept verbatim, so it can smuggle pointer bytes into the packet."""
    return b"\x00" + b"\x00\x0a\x00\x01" + b"\x00\x00\x00\x00" + len(rdata).to_bytes(2, "big") + rdata


def test_pointer_to_pointer_chain_decodes():
    """A name that is a pointer to a pointer (both backward) must chase
    the chain and land on the original labels."""
    # question "a.example" at 12..22, fixed fields to 27; NULL rdata at
    # offset 38 holds a pointer to the question name; the A record's
    # owner at offset 40 points at that pointer.
    wire = (
        _header(qd=1, an=2)
        + _QNAME
        + b"\x00\x01\x00\x01"
        + _null_rr(b"\xc0\x0c")
        + b"\xc0\x26"  # owner: pointer to offset 38 (inside the NULL rdata)
        + b"\x00\x01\x00\x01" + b"\x00\x00\x01\x2c" + b"\x00\x04" + b"\x5d\x00\x00\x01"
    )
    decoded = Message.from_wire(wire)
    assert decoded.answers[1].name == Name.from_text("a.example")
    assert decoded.answers[1].rrtype == RRType.A
    assert decoded.answers[1].rdata == A("93.0.0.1")


def test_self_pointer_raises():
    """A name whose first byte is a pointer to itself is rejected (the
    codec only accepts strictly backward targets)."""
    wire = _header(qd=1) + b"\xc0\x0c" + b"\x00\x01\x00\x01"
    try:
        Message.from_wire(wire)
        raise AssertionError("self-pointer accepted")
    except WireError:
        pass


def test_label_pointer_loop_raises():
    """label + pointer back to the label's own start: each chase re-reads
    the label, so only the jump guard can terminate it."""
    wire = _header(qd=1) + b"\x01a\xc0\x0c" + b"\x00\x01\x00\x01"
    try:
        Message.from_wire(wire)
        raise AssertionError("pointer loop accepted")
    except WireError:
        pass


def _chain_packet(jumps: int) -> bytes:
    """An A record whose owner name chases ``jumps`` chained pointers
    (smuggled in NULL rdata) before reaching the question name."""
    head = _header(qd=1, an=2) + _QNAME + b"\x00\x01\x00\x01"
    rdata_start = len(head) + 1 + 4 + 4 + 2  # after the NULL rr's fixed fields
    chain = bytearray(b"\xc0\x0c")  # first hop: the question name at 12
    for hop in range(1, jumps):
        target = rdata_start + (hop - 1) * 2
        chain += bytes([0xC0 | (target >> 8), target & 0xFF])
    last = rdata_start + (jumps - 1) * 2
    return (
        head
        + _null_rr(bytes(chain))
        + bytes([0xC0 | (last >> 8), last & 0xFF])
        + b"\x00\x01\x00\x01" + b"\x00\x00\x01\x2c" + b"\x00\x04" + b"\x5d\x00\x00\x01"
    )


def test_pointer_chain_depth_limits():
    """A modest chain decodes to the spliced name; a chain past the jump
    guard raises instead of walking forever."""
    decoded = Message.from_wire(_chain_packet(16))
    assert decoded.answers[1].name == Name.from_text("a.example")
    try:
        Message.from_wire(_chain_packet(80))
        raise AssertionError("80-jump chain accepted")
    except WireError:
        pass


def test_all_prefixes_of_rich_message():
    """Exhaustive truncation sweep of a response exercising EDNS, lazy
    char-string rdata, SOA, AAAA and CNAME: only the full packet may
    parse, and malformed slices raise WireError, never anything else."""
    from repro.dnslib import add_edns
    from repro.dnslib.rdata.names import SOA

    qname = Name.from_text("www.example.com")
    apex = Name.from_text("example.com")
    message = Message(
        id=0x7777,
        flags=Flags(response=True, authoritative=True),
        questions=[Question(qname, RRType.TXT)],
        answers=[
            ResourceRecord(qname, RRType.CNAME, DNSClass.IN, 300, CNAME(apex)),
            ResourceRecord(apex, RRType.TXT, DNSClass.IN, 300, TXT((b"v=spf1 -all",))),
            ResourceRecord(apex, RRType.AAAA, DNSClass.IN, 300, AAAA("2001:db8::1")),
        ],
        authorities=[
            ResourceRecord(
                apex, RRType.SOA, DNSClass.IN, 3600,
                SOA(Name.from_text("ns1.example.com"),
                    Name.from_text("hostmaster.example.com"),
                    2024010101, 7200, 3600, 1209600, 300),
            )
        ],
    )
    add_edns(message, payload_size=1232)
    wire = message.to_wire()
    decoded = 0
    for cut in range(len(wire) + 1):
        try:
            Message.from_wire(wire[:cut])
            decoded += 1
        except WireError:
            pass
    assert decoded == 1
