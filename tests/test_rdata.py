"""Round-trip and behaviour tests for every RDATA codec."""

import pytest

from repro.dnslib import (
    GenericRData,
    Name,
    ResourceRecord,
    RRType,
    WireError,
    WireReader,
    WireWriter,
    rdata_class,
    registered_types,
)
from repro.dnslib.rdata.address import A, AAAA, EUI48
from repro.dnslib.rdata.security import CAA
from repro.dnslib.rdata.text import TXT, TextRData
from repro.dnslib.rdata._util import decode_type_bitmap, encode_type_bitmap

from .rdata_samples import SAMPLES


def roundtrip(rdata):
    """Encode rdata alone and decode it with its own codec."""
    writer = WireWriter()
    rdata.to_wire(writer)
    wire = writer.getvalue()
    reader = WireReader(wire)
    decoded = type(rdata).from_wire(reader, len(wire))
    assert reader.at_end()
    return decoded


ALL_SAMPLES = [
    pytest.param(rdata, id=f"{RRType(rrtype).name}-{i}")
    for rrtype, samples in sorted(SAMPLES.items())
    for i, rdata in enumerate(samples)
]


@pytest.mark.parametrize("rdata", ALL_SAMPLES)
def test_wire_roundtrip(rdata):
    assert roundtrip(rdata) == rdata


@pytest.mark.parametrize("rdata", ALL_SAMPLES)
def test_to_text_is_string(rdata):
    assert isinstance(rdata.to_text(), str)


@pytest.mark.parametrize("rdata", ALL_SAMPLES)
def test_record_roundtrip_through_message_section(rdata):
    record = ResourceRecord(Name.from_text("example.com"), rdata.rrtype, 1, 3600, rdata)
    writer = WireWriter()
    record.to_wire(writer)
    decoded = ResourceRecord.from_wire(WireReader(writer.getvalue()))
    assert decoded.rdata == rdata
    assert decoded.ttl == 3600


def test_every_paper_type_is_registered():
    paper_types = [
        "A", "AAAA", "AFSDB", "ATMA", "AVC", "CAA", "CDNSKEY", "CDS", "CERT",
        "CNAME", "CSYNC", "DHCID", "DNSKEY", "DS", "EID", "EUI48", "EUI64",
        "GID", "GPOS", "HINFO", "HIP", "ISDN", "KEY", "KX", "L32", "L64",
        "LOC", "LP", "MB", "MD", "MF", "MG", "MR", "MX", "NAPTR", "NID",
        "NINFO", "NS", "NSAPPTR", "NSEC", "NSEC3PARAM", "NXT", "OPENPGPKEY",
        "PTR", "PX", "RP", "RRSIG", "RT", "SMIMEA", "SOA", "SPF", "SRV",
        "SSHFP", "TALINK", "TKEY", "TLSA", "TXT", "UID", "UINFO", "UNSPEC",
        "URI",
    ]
    registered = registered_types()
    missing = [t for t in paper_types if int(RRType[t]) not in registered]
    assert not missing


def test_unknown_type_uses_generic():
    cls = rdata_class(61000)
    assert cls is GenericRData
    data = GenericRData(b"\x01\x02\x03")
    assert roundtrip(data) == data
    assert data.to_text() == r"\# 3 010203"
    assert GenericRData().to_text() == r"\# 0"


class TestAddress:
    def test_a_rejects_wrong_length(self):
        with pytest.raises(WireError):
            A.from_wire(WireReader(b"\x01\x02"), 2)

    def test_a_text(self):
        assert A("10.0.0.1").to_text() == "10.0.0.1"
        assert A("10.0.0.1").zdns_answer() == "10.0.0.1"

    def test_aaaa_text_is_compressed_form(self):
        assert AAAA("2001:0db8:0000:0000:0000:0000:0000:0001").to_text() == "2001:db8::1"

    def test_invalid_address_rejected(self):
        with pytest.raises(ValueError):
            A("999.0.0.1")

    def test_eui48_length_enforced(self):
        with pytest.raises(ValueError):
            EUI48(b"\x00")

    def test_eui48_text(self):
        assert EUI48(b"\x00\x11\x22\x33\x44\x55").to_text() == "00-11-22-33-44-55"


class TestText:
    def test_from_string_splits_at_255(self):
        rdata = TXT.from_string(b"x" * 600)
        assert [len(s) for s in rdata.strings] == [255, 255, 90]
        assert rdata.joined() == b"x" * 600

    def test_zdns_answer_joins(self):
        assert TXT([b"ab", b"cd"]).zdns_answer() == "abcd"

    def test_quoting(self):
        assert TXT([b'say "hi"']).to_text() == '"say \\"hi\\""'

    def test_rejects_long_chunk(self):
        with pytest.raises(ValueError):
            TextRData([b"x" * 256])

    def test_empty_string_allowed(self):
        rdata = TXT.from_string(b"")
        assert roundtrip(rdata) == rdata


class TestCAA:
    def test_critical_flag(self):
        assert CAA(128, b"issue", b"ca.example").critical
        assert not CAA(0, b"issue", b"ca.example").critical

    def test_tag_validity(self):
        assert CAA(0, b"issue", b"x").tag_is_valid()
        assert CAA(0, b"issue01", b"x").tag_is_valid()
        assert not CAA(0, b"is sue", b"x").tag_is_valid()
        assert not CAA(0, b"is_sue", b"x").tag_is_valid()

    def test_empty_tag_rejected(self):
        with pytest.raises(ValueError):
            CAA(0, b"", b"x")

    def test_zdns_answer_shape(self):
        answer = CAA(0, "issue", "letsencrypt.org").zdns_answer()
        assert answer == {"flag": 0, "tag": "issue", "value": "letsencrypt.org"}

    def test_accepts_str_arguments(self):
        assert CAA(0, "issue", "ca").tag == b"issue"


class TestTypeBitmap:
    def test_roundtrip_simple(self):
        types = (1, 2, 15, 16, 257)
        assert decode_type_bitmap(encode_type_bitmap(types)) == types

    def test_empty(self):
        assert encode_type_bitmap(()) == b""
        assert decode_type_bitmap(b"") == ()

    def test_deduplicates_and_sorts(self):
        assert decode_type_bitmap(encode_type_bitmap((16, 1, 16))) == (1, 16)

    def test_window_boundaries(self):
        types = (0x00FF, 0x0100, 0x1234)
        assert decode_type_bitmap(encode_type_bitmap(types)) == types

    def test_truncated_bitmap_rejected(self):
        with pytest.raises(WireError):
            decode_type_bitmap(b"\x00")

    def test_invalid_block_length_rejected(self):
        with pytest.raises(WireError):
            decode_type_bitmap(b"\x00\x00")
