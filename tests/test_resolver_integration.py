"""Integration tests: the core resolver running against the full
simulated Internet."""

import pytest

from repro.core import Resolver, ResolverConfig, SelectiveCache, Status
from repro.dnslib import Name, RRType, name_from_ipv4_ptr
from repro.ecosystem import EcosystemParams, ZoneSynthesizer, build_internet

N = Name.from_text


@pytest.fixture(scope="module")
def internet():
    return build_internet(params=EcosystemParams(seed=77))


@pytest.fixture(scope="module")
def synth(internet):
    return internet.synth


def find_domain(synth, predicate, tld="com", limit=30000, prefix="itest"):
    for i in range(limit):
        base = N(f"{prefix}-{i}.{tld}")
        profile = synth.profile(base)
        if predicate(profile):
            return base, profile
    raise AssertionError("no matching domain found")


class TestIterativeOnUniverse:
    def test_resolves_existing_domain(self, internet, synth):
        base, _ = find_domain(synth, lambda p: p.exists and not p.truncates)
        resolver = Resolver(internet, mode="iterative")
        result = resolver.lookup(base, RRType.A)
        assert result.status == Status.NOERROR
        assert result.answers

    def test_answers_match_synth(self, internet, synth):
        base, profile = find_domain(
            synth,
            lambda p: p.exists and not p.truncates and p.consistent_answers
            and all(ns.drop_prob == 0 and not ns.lame for ns in p.nameservers),
        )
        resolver = Resolver(internet, mode="iterative")
        result = resolver.lookup(base, RRType.A)
        got = sorted(record.rdata.address for record in result.answers)
        assert got == sorted(synth.host_addresses(base, "a"))

    def test_nxdomain_for_unregistered(self, internet, synth):
        base, _ = find_domain(synth, lambda p: not p.exists and not p.dead)
        resolver = Resolver(internet, mode="iterative")
        result = resolver.lookup(base, RRType.A)
        assert result.status == Status.NXDOMAIN

    def test_dead_domain_fails(self, internet, synth):
        base, _ = find_domain(synth, lambda p: p.dead)
        resolver = Resolver(
            internet, mode="iterative", config=ResolverConfig(retries=0, iteration_timeout=0.5)
        )
        result = resolver.lookup(base, RRType.A)
        assert result.status in (Status.ITERATIVE_TIMEOUT, Status.SERVFAIL, Status.ERROR)

    def test_truncated_domain_resolved_via_tcp(self, internet, synth):
        base, _ = find_domain(synth, lambda p: p.exists and p.truncates)
        resolver = Resolver(internet, mode="iterative")
        result = resolver.lookup(base, RRType.A)
        assert result.status == Status.NOERROR
        assert internet.network.stats.tcp_queries > 0

    def test_mx_lookup(self, internet, synth):
        base, _ = find_domain(synth, lambda p: p.exists and p.has_mx and not p.truncates)
        resolver = Resolver(internet, mode="iterative")
        result = resolver.lookup(base, RRType.MX)
        assert result.status == Status.NOERROR
        assert all(int(record.rrtype) == int(RRType.MX) for record in result.answers)

    def test_caa_direct(self, internet, synth):
        base, profile = find_domain(
            synth, lambda p: p.exists and p.caa is not None and not p.caa.via_cname
        )
        resolver = Resolver(internet, mode="iterative")
        result = resolver.lookup(base, RRType.CAA)
        assert result.status == Status.NOERROR
        tags = {record.rdata.tag for record in result.answers}
        assert tags  # has some CAA tags

    def test_caa_via_cname_chased(self, internet, synth):
        base, profile = find_domain(
            synth, lambda p: p.exists and p.caa is not None and p.caa.via_cname,
            limit=200000,
        )
        resolver = Resolver(internet, mode="iterative")
        result = resolver.lookup(base, RRType.CAA)
        assert result.status == Status.NOERROR
        types = {int(record.rrtype) for record in result.answers}
        assert int(RRType.CNAME) in types
        assert int(RRType.CAA) in types

    def test_ptr_existing(self, internet, synth):
        ip = next(
            f"23.7.{i}.9" for i in range(200) if synth.ptr_status(f"23.7.{i}.9") == "noerror"
        )
        resolver = Resolver(internet, mode="iterative")
        result = resolver.lookup(name_from_ipv4_ptr(ip), RRType.PTR)
        assert result.status == Status.NOERROR
        assert result.answers[0].rdata.target == synth.ptr_target(ip)

    def test_ptr_nxdomain(self, internet, synth):
        ip = next(
            f"23.8.{i}.9" for i in range(200) if synth.ptr_status(f"23.8.{i}.9") == "nxdomain"
        )
        resolver = Resolver(internet, mode="iterative")
        result = resolver.lookup(name_from_ipv4_ptr(ip), RRType.PTR)
        assert result.status == Status.NXDOMAIN

    def test_cache_reduces_queries(self, internet, synth):
        cache = SelectiveCache(capacity=10_000)
        resolver = Resolver(internet, mode="iterative", cache=cache)
        first, _ = find_domain(synth, lambda p: p.exists and not p.truncates, prefix="warm")
        second, _ = find_domain(synth, lambda p: p.exists and not p.truncates, prefix="warm2")
        r1 = resolver.lookup(first, RRType.A)
        r2 = resolver.lookup(second, RRType.A)
        # second lookup starts at the cached .com delegation
        assert r2.trace.steps[0].cached
        assert cache.stats.hits >= 1

    def test_trace_layers_descend(self, internet, synth):
        base, _ = find_domain(synth, lambda p: p.exists and not p.truncates)
        cache = SelectiveCache(capacity=10)
        resolver = Resolver(internet, mode="iterative", cache=cache, record_trace=True)
        result = resolver.lookup(N("www").concatenate(base), RRType.A)
        layers = [step.layer for step in result.trace if not step.cached]
        assert layers[0] == "."
        assert layers[1] == base.labels[-1].decode()
        # trace carries full result blocks (Appendix C)
        assert any(step.results for step in result.trace)


class TestExternalOnUniverse:
    def test_google_resolves(self, internet, synth):
        base, _ = find_domain(synth, lambda p: p.exists)
        resolver = Resolver(internet, mode="google")
        result = resolver.lookup(base, RRType.A)
        assert result.status == Status.NOERROR
        assert result.resolver == "8.8.8.8:53"

    def test_cloudflare_resolves(self, internet, synth):
        base, _ = find_domain(synth, lambda p: p.exists)
        resolver = Resolver(internet, mode="cloudflare")
        result = resolver.lookup(base, RRType.A)
        assert result.status == Status.NOERROR

    def test_external_nxdomain(self, internet, synth):
        base, _ = find_domain(synth, lambda p: not p.exists and not p.dead)
        resolver = Resolver(internet, mode="google")
        result = resolver.lookup(base, RRType.A)
        assert result.status == Status.NXDOMAIN

    def test_external_dead_servfails(self, internet, synth):
        base, _ = find_domain(synth, lambda p: p.dead)
        resolver = Resolver(internet, mode="google", config=ResolverConfig(retries=0))
        result = resolver.lookup(base, RRType.A)
        assert result.status == Status.SERVFAIL

    def test_external_ptr(self, internet, synth):
        ip = next(
            f"34.9.{i}.7" for i in range(200) if synth.ptr_status(f"34.9.{i}.7") == "noerror"
        )
        resolver = Resolver(internet, mode="cloudflare")
        result = resolver.lookup(name_from_ipv4_ptr(ip), RRType.PTR)
        assert result.status == Status.NOERROR

    def test_iterative_and_external_agree(self, internet, synth):
        base, _ = find_domain(
            synth,
            lambda p: p.exists and not p.truncates and p.consistent_answers
            and all(ns.drop_prob == 0 and not ns.lame for ns in p.nameservers),
        )
        iterative = Resolver(internet, mode="iterative").lookup(base, RRType.A)
        external = Resolver(internet, mode="google").lookup(base, RRType.A)
        iter_ips = sorted(r.rdata.address for r in iterative.answers)
        ext_ips = sorted(r.rdata.address for r in external.answers)
        assert iter_ips == ext_ips


class TestResolverFacade:
    def test_rejects_non_internet(self):
        with pytest.raises(TypeError):
            Resolver(object())

    def test_rejects_unknown_mode(self, internet):
        with pytest.raises(ValueError):
            Resolver(internet, mode="quantum")
