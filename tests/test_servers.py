"""Tests for the simulated authoritative servers and public resolvers."""

import pytest

from repro.dnslib import DNSClass, Message, Name, Rcode, RRType, name_from_ipv4_ptr
from repro.ecosystem import (
    ArpaServer,
    EcosystemParams,
    InfraServer,
    ProviderAuthServer,
    PublicResolver,
    RdnsOperatorServer,
    RootServer,
    TLDServer,
    ZoneSynthesizer,
)

N = Name.from_text


@pytest.fixture(scope="module")
def synth():
    return ZoneSynthesizer(EcosystemParams(seed=33))


def ask(server, name, rrtype=RRType.A, client="198.18.0.0", now=0.0, protocol="udp", rrclass=DNSClass.IN):
    query = Message.make_query(name, rrtype, rrclass=rrclass, txid=7, recursion_desired=False)
    reply = server.handle_query(query, client, now, protocol)
    return reply.message if reply is not None else None


def find_domain(synth, predicate, tld="com", prefix="srv", limit=60_000):
    for i in range(limit):
        base = N(f"{prefix}-{i}.{tld}")
        if predicate(synth.profile(base)):
            return base, synth.profile(base)
    raise AssertionError("not found")


class TestRootServer:
    def test_tld_referral_with_glue(self, synth):
        root = RootServer(synth)
        response = ask(root, "example.com")
        assert response.rcode == Rcode.NOERROR
        assert not response.flags.authoritative
        ns_names = [r.rdata.target for r in response.authorities]
        assert len(ns_names) == 2
        glue = {r.name: r.rdata.address for r in response.additionals}
        assert set(glue) == set(ns_names)

    def test_unknown_tld_nxdomain(self, synth):
        root = RootServer(synth)
        assert ask(root, "host.unknown-tld").rcode == Rcode.NXDOMAIN

    def test_arpa_referral(self, synth):
        root = RootServer(synth)
        response = ask(root, "1.2.0.192.in-addr.arpa", RRType.PTR)
        assert response.authorities
        assert response.authorities[0].name == N("in-addr.arpa")

    def test_example_tld_referral(self, synth):
        root = RootServer(synth)
        response = ask(root, "ns1.cloudflare-dns.example")
        assert {r.rdata.address for r in response.additionals} == set(synth.infra_server_ips())

    def test_root_itself(self, synth):
        root = RootServer(synth)
        response = ask(root, ".")
        assert response.rcode == Rcode.NOERROR
        assert not response.answers


class TestTLDServer:
    def test_registered_domain_referral(self, synth):
        base, profile = find_domain(synth, lambda p: p.exists)
        server = TLDServer(synth, "com")
        response = ask(server, base)
        ns_ips = {r.rdata.address for r in response.additionals}
        assert ns_ips == {ns.ip for ns in profile.nameservers}

    def test_unregistered_nxdomain(self, synth):
        base, _ = find_domain(synth, lambda p: not p.exists and not p.dead)
        response = ask(TLDServer(synth, "com"), base)
        assert response.rcode == Rcode.NXDOMAIN
        assert response.authorities[0].rrtype == RRType.SOA

    def test_dead_domain_referred_to_dark_space(self, synth):
        base, _ = find_domain(synth, lambda p: p.dead)
        response = ask(TLDServer(synth, "com"), base)
        assert response.rcode == Rcode.NOERROR
        for record in response.additionals:
            assert record.rdata.address.startswith("203.0.113.")

    def test_out_of_zone_refused(self, synth):
        response = ask(TLDServer(synth, "com"), "example.net")
        assert response.rcode == Rcode.REFUSED


class TestProviderAuthServer:
    def make_server(self, synth, profile, ns_index=0):
        target = profile.nameservers[ns_index]
        slot = int(target.name.labels[0][2:]) - 1
        return ProviderAuthServer(synth, profile.provider_index, slot, seed=33)

    def test_answers_a_for_hosted_domain(self, synth):
        base, profile = find_domain(
            synth, lambda p: p.exists and not p.truncates
            and p.nameservers[0].drop_prob == 0 and not p.nameservers[0].lame
        )
        server = self.make_server(synth, profile)
        response = ask(server, base)
        assert response.flags.authoritative
        assert {r.rdata.address for r in response.answers} == set(
            synth.host_addresses(base, "a")
        )

    def test_refuses_unhosted_domain(self, synth):
        base, profile = find_domain(synth, lambda p: p.exists)
        other = next(
            i for i, p in enumerate(synth.params.providers) if i != profile.provider_index
        )
        server = ProviderAuthServer(synth, other, 0, seed=33)
        response = ask(server, base)
        assert response.rcode == Rcode.REFUSED
        assert server.refused == 1

    def test_lame_delegation_refuses(self, synth):
        base, profile = find_domain(
            synth, lambda p: p.exists and any(ns.lame for ns in p.nameservers),
            limit=200_000,
        )
        index = next(i for i, ns in enumerate(profile.nameservers) if ns.lame)
        server = self.make_server(synth, profile, index)
        assert ask(server, base).rcode == Rcode.REFUSED

    def test_severe_flaky_drops_most_queries(self, synth):
        base, profile = find_domain(
            synth, lambda p: p.exists and any(ns.drop_prob > 0.9 for ns in p.nameservers),
            limit=400_000,
        )
        index = next(i for i, ns in enumerate(profile.nameservers) if ns.drop_prob > 0.9)
        server = self.make_server(synth, profile, index)
        answered = sum(ask(server, base) is not None for _ in range(50))
        assert answered < 25

    def test_truncation_on_udp_but_not_tcp(self, synth):
        base, profile = find_domain(
            synth, lambda p: p.exists and p.truncates and p.nameservers[0].drop_prob == 0
            and not p.nameservers[0].lame
        )
        server = self.make_server(synth, profile)
        udp = ask(server, base, protocol="udp")
        tcp = ask(server, base, protocol="tcp")
        assert udp.flags.truncated and not udp.answers
        assert not tcp.flags.truncated and tcp.answers

    def test_version_bind_chaos(self, synth):
        base, profile = find_domain(synth, lambda p: p.exists)
        server = self.make_server(synth, profile)
        response = ask(server, "version.bind", RRType.TXT, rrclass=DNSClass.CH)
        assert response.answers
        assert response.answers[0].rdata.joined()

    def test_nxdomain_for_missing_subdomain(self, synth):
        base, profile = find_domain(
            synth, lambda p: p.exists and p.nameservers[0].drop_prob == 0
            and not p.nameservers[0].lame
        )
        server = self.make_server(synth, profile)
        missing = next(
            label for label in ("zz1", "zz2", "zz3", "zz4", "zz5", "qqq", "zzz9")
            if not synth.subdomain_exists(N(label).concatenate(base), profile)
        )
        response = ask(server, N(missing).concatenate(base))
        assert response.rcode == Rcode.NXDOMAIN


class TestInfraServer:
    def test_resolves_nameserver_hosts(self, synth):
        infra = InfraServer(synth)
        name = synth.provider_ns_name(2, 1)
        response = ask(infra, name)
        assert response.answers[0].rdata.address == synth.provider_ns_ip(2, 1)

    def test_resolves_ptr_targets(self, synth):
        infra = InfraServer(synth)
        target = synth.ptr_target("23.4.5.6")
        response = ask(infra, target)
        assert response.answers

    def test_refuses_foreign_zone(self, synth):
        assert ask(InfraServer(synth), "www.google.com").rcode == Rcode.REFUSED


class TestReverseTree:
    def test_arpa_delegates_slash8(self, synth):
        arpa = ArpaServer(synth)
        response = ask(arpa, "9.8.7.23.in-addr.arpa", RRType.PTR)
        assert response.authorities[0].name == N("23.in-addr.arpa")

    def test_operator_walk_to_leaf(self, synth):
        ip = next(
            f"23.40.{i}.9" for i in range(256) if synth.ptr_status(f"23.40.{i}.9") == "noerror"
        )
        octets = tuple(int(x) for x in ip.split("."))
        name = name_from_ipv4_ptr(ip)

        op8 = synth.rdns_operator(octets[:1])
        server8 = RdnsOperatorServer(synth, op8, 0)
        ref16 = ask(server8, name, RRType.PTR)
        assert ref16.authorities[0].name == N(f"{octets[1]}.{octets[0]}.in-addr.arpa")

        op16 = synth.rdns_operator(octets[:2])
        server16 = RdnsOperatorServer(synth, op16, 0)
        ref24 = ask(server16, name, RRType.PTR)
        assert ref24.authorities[0].name == N(
            f"{octets[2]}.{octets[1]}.{octets[0]}.in-addr.arpa"
        )

        op24 = synth.rdns_operator(octets[:3])
        server24 = RdnsOperatorServer(synth, op24, 0)
        answer = ask(server24, name, RRType.PTR)
        assert answer.flags.authoritative
        assert answer.answers[0].rdata.target == synth.ptr_target(ip)

    def test_nxdomain_leaf(self, synth):
        ip = next(
            f"23.41.{i}.9" for i in range(256) if synth.ptr_status(f"23.41.{i}.9") == "nxdomain"
        )
        octets = tuple(int(x) for x in ip.split("."))
        server = RdnsOperatorServer(synth, synth.rdns_operator(octets[:3]), 0)
        assert ask(server, name_from_ipv4_ptr(ip), RRType.PTR).rcode == Rcode.NXDOMAIN

    def test_wrong_operator_refuses(self, synth):
        octets = (23, 42, 7)
        op24 = synth.rdns_operator(octets)
        wrong = (op24 + 1) % synth.params.rdns_operators
        # ensure the wrong operator isn't coincidentally authoritative
        # for a parent zone of this name
        if synth.rdns_operator(octets[:1]) == wrong or synth.rdns_operator(octets[:2]) == wrong:
            wrong = (op24 + 2) % synth.params.rdns_operators
        server = RdnsOperatorServer(synth, wrong, 0)
        response = ask(server, name_from_ipv4_ptr("23.42.7.1"), RRType.PTR)
        if response is not None:
            assert response.rcode == Rcode.REFUSED


class TestPublicResolverModel:
    def test_google_rate_limit_drops(self, synth):
        resolver = PublicResolver(synth, rate_limit_per_ip=10.0)
        query = Message.make_query("a.com", RRType.A)
        outcomes = [
            resolver.handle_query(query, "1.2.3.4", 0.0, "udp") for _ in range(30)
        ]
        assert any(outcome is None for outcome in outcomes)
        assert resolver.stats.rate_limited > 0

    def test_rate_limit_is_per_client(self, synth):
        resolver = PublicResolver(synth, rate_limit_per_ip=10.0)
        query = Message.make_query("a.com", RRType.A)
        for _ in range(30):
            resolver.handle_query(query, "1.2.3.4", 0.0, "udp")
        assert resolver.handle_query(query, "5.6.7.8", 0.0, "udp") is not None

    def test_capacity_shedding_servfails(self, synth):
        resolver = PublicResolver(synth, capacity=10.0, max_backlog=0.1)
        query = Message.make_query("a.com", RRType.A)
        rcodes = [
            resolver.handle_query(query, "1.2.3.4", 0.0, "udp").message.rcode
            for _ in range(50)
        ]
        assert Rcode.SERVFAIL in rcodes
        assert resolver.stats.shed > 0

    def test_warm_cache_faster_on_retry(self, synth):
        resolver = PublicResolver.cloudflare_like(synth)
        # find a name with a slow first recursion
        for i in range(5000):
            name = f"slow-{i}.com"
            profile = synth.profile(N(name))
            if not profile.exists:
                continue
            query = Message.make_query(name, RRType.A)
            first = resolver.handle_query(query, "1.1.2.2", 0.0, "udp")
            if first.delay > 0.4:
                second = resolver.handle_query(query, "1.1.2.2", 0.0, "udp")
                assert second.delay < first.delay
                return
        pytest.skip("no slow-tail name found in sample")

    def test_recursion_available_flag_set(self, synth):
        resolver = PublicResolver.cloudflare_like(synth)
        reply = resolver.handle_query(Message.make_query("a.com", RRType.A), "9.9.9.9", 0.0, "udp")
        assert reply.message.flags.recursion_available
