"""Tests for the resolver service daemon, zone-delta publication, and
the serve-stale x prefetch x revalidation interactions."""

import json

import pytest

from repro.dnslib import DNSClass, Name, ResourceRecord, RRType
from repro.dnslib.rdata.address import A
from repro.ecosystem import EcosystemParams, build_internet, publish_zone_delta
from repro.oracle import DifferentialOracle
from repro.service import ResolverService, ServiceConfig, run_service
from repro.service.__main__ import build_parser, config_from_args

N = Name.from_text


def small_config(**overrides):
    base = dict(
        seed=7,
        duration=300.0,
        catalog_size=40,
        base_qps=3.0,
        workers=4,
        status_interval=100.0,
        prefetch_interval=30.0,
    )
    base.update(overrides)
    return ServiceConfig(**base)


# ---------------------------------------------------------------------------
# configuration
# ---------------------------------------------------------------------------


class TestServiceConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(duration=0)
        with pytest.raises(ValueError):
            ServiceConfig(diurnal_depth=1.0)
        with pytest.raises(ValueError):
            ServiceConfig(revalidation="sometimes")
        with pytest.raises(ValueError):
            ServiceConfig(blackouts=((100.0, 100.0),))

    def test_delta_times_spread_evenly(self):
        cfg = ServiceConfig(duration=400.0, deltas=3)
        assert cfg.resolved_delta_times() == (100.0, 200.0, 300.0)
        pinned = ServiceConfig(duration=400.0, delta_times=(250.0, 50.0))
        assert pinned.resolved_delta_times() == (50.0, 250.0)

    def test_cli_round_trip(self):
        args = build_parser().parse_args(
            [
                "--seed", "3", "--duration", "120", "--catalog-size", "10",
                "--blackout", "30:60", "--deltas", "2",
                "--revalidation", "flush", "--stale-ttl", "0",
            ]
        )
        cfg = config_from_args(args)
        assert cfg.seed == 3
        assert cfg.blackouts == ((30.0, 60.0),)
        assert cfg.revalidation == "flush"
        assert cfg.stale_ttl is None  # 0 disables serve-stale

    def test_bad_blackout_spec_rejected(self):
        args = build_parser().parse_args(["--blackout", "oops"])
        with pytest.raises(SystemExit):
            config_from_args(args)


# ---------------------------------------------------------------------------
# zone-delta publication
# ---------------------------------------------------------------------------


class TestZoneDeltas:
    def test_generations_advance_and_change_the_zone(self):
        internet = build_internet(params=EcosystemParams(seed=11), wire_mode="never")
        synth = internet.synth
        base = synth.base_domain_of(N("www.d1-0.com"))
        before = synth.profile(base)
        assert publish_zone_delta(internet, base) == 1
        assert publish_zone_delta(internet, base) == 2
        assert synth.generation_of(base) == 2
        # over a handful of generations the delegation/content must
        # actually move (every draw is salted by the generation)
        changed = False
        for generation in range(3, 8):
            publish_zone_delta(internet, base)
            after = synth.profile(base)
            if (
                after.provider != before.provider
                or after.nameservers != before.nameservers
            ):
                changed = True
                break
        assert changed

    def test_registration_survives_a_delta(self):
        """A delta models a zone update, not a takedown: existence is
        drawn from the unsalted key, so it is generation-invariant."""
        internet = build_internet(params=EcosystemParams(seed=11), wire_mode="never")
        synth = internet.synth
        base = synth.base_domain_of(N("www.d1-0.com"))
        exists_before = synth.profile(base).exists
        for _ in range(4):
            publish_zone_delta(internet, base)
        assert synth.profile(base).exists == exists_before

    def test_delta_clears_every_server_memo(self):
        internet = build_internet(params=EcosystemParams(seed=11), wire_mode="never")
        base = internet.synth.base_domain_of(N("www.d1-0.com"))
        memos = [
            server.memo
            for server in internet.network.servers()
            if getattr(server, "memo", None) is not None
        ]
        assert memos  # the universe has memoised servers
        for memo in memos:
            memo._entries["sentinel"] = object()
        publish_zone_delta(internet, base)
        assert all(len(memo._entries) == 0 for memo in memos)

    def test_unknown_tld_rejected(self):
        internet = build_internet(params=EcosystemParams(seed=11), wire_mode="never")
        with pytest.raises(ValueError):
            publish_zone_delta(internet, N("host.invalid-tld-zz"))

    def test_oracle_note_zone_change_mirrors_and_evicts(self):
        oracle = DifferentialOracle(seed=11)
        synth = oracle.reference.internet.synth
        base = synth.base_domain_of(N("www.d1-0.com"))
        inside = N("www.d1-0.com")
        outside = N("www.d2-0.com")
        oracle.oracle_result(inside, RRType.A)
        oracle.oracle_result(outside, RRType.A)
        assert len(oracle._memo) == 2
        generation = oracle.note_zone_change(base)
        assert generation == 1
        assert synth.generation_of(base) == 1
        keys = {key[0] for key in oracle._memo}
        assert inside.canonical_key() not in keys  # evicted: under base
        assert outside.canonical_key() in keys  # untouched


# ---------------------------------------------------------------------------
# the daemon: determinism, serve-stale, revalidation
# ---------------------------------------------------------------------------


class TestServiceRun:
    def test_byte_identical_replay(self):
        """The acceptance bar: two runs of the same config produce
        identical event logs, counters, and metrics dumps."""
        cfg = dict(deltas=2, blackouts=((120.0, 200.0),), oracle_check_every=7)
        a = run_service(small_config(**cfg))
        b = run_service(small_config(**cfg))
        assert a.determinism_digest() == b.determinism_digest()
        assert json.dumps(a.events) == json.dumps(b.events)

    def test_different_seed_diverges(self):
        a = run_service(small_config(duration=120.0))
        b = run_service(small_config(duration=120.0, seed=8))
        assert a.determinism_digest() != b.determinism_digest()

    def test_serve_stale_keeps_eligible_availability_during_blackout(self):
        """An upstream blackout longer than the answer TTL: every name
        the service ever served stays answerable (fresh, negative, or
        stale), so eligible availability holds at >= 99%."""
        report = run_service(
            small_config(duration=900.0, blackouts=((300.0, 720.0),))
        )
        availability = report.availability
        assert availability["eligible"] > 50
        assert availability["eligible_availability"] >= 0.99
        counters = report.counters
        assert counters["stale_answers_served"] > 0
        # stale serving happened through the cache's bounded window
        assert report.cache["stale_hits"] == (
            counters["stale_answers_served"] + counters["stale_negatives_served"]
        )

    def test_without_serve_stale_blackout_availability_collapses(self):
        """The control: same blackout, stale_ttl disabled — queries that
        would have been served stale now fail."""
        with_stale = run_service(
            small_config(duration=900.0, blackouts=((300.0, 720.0),))
        )
        without = run_service(
            small_config(duration=900.0, blackouts=((300.0, 720.0),), stale_ttl=None)
        )
        assert without.counters["stale_answers_served"] == 0
        assert without.counters["failed"] > with_stale.counters["failed"]
        assert (
            without.availability["eligible_availability"]
            < with_stale.availability["eligible_availability"]
        )

    def test_incremental_revalidation_is_cheaper_than_flush(self):
        base = dict(duration=600.0, deltas=3, catalog_size=60)
        incremental = run_service(small_config(revalidation="incremental", **base))
        flush = run_service(small_config(revalidation="flush", **base))
        # the flush baseline throws the whole cache away per delta...
        assert flush.cache["invalidated"] > incremental.cache["invalidated"]
        # ...and pays for it upstream: strictly more re-resolution traffic
        queries = lambda r: r.network["udp_queries"] + r.network["tcp_queries"]  # noqa: E731
        assert queries(incremental) < queries(flush)
        # both revalidated the same affected names
        assert [d["revalidate_names"] for d in incremental.deltas] == [
            d["revalidate_names"] for d in flush.deltas
        ]

    def test_shadow_oracle_agrees_across_deltas(self):
        """Zone deltas are mirrored into the oracle's universe, so the
        sampled shadow checks stay divergence-free as zones mutate."""
        report = run_service(
            small_config(duration=600.0, deltas=3, oracle_check_every=4)
        )
        assert report.counters["deltas_published"] == 3
        assert report.oracle["checked"] > 10
        assert report.oracle["divergences"] == 0
        assert report.divergences == []

    def test_prefetch_refreshes_hot_entries(self):
        report = run_service(
            small_config(duration=900.0, base_qps=6.0, prefetch_min_hits=2)
        )
        assert report.counters["prefetch_scheduled"] > 0
        assert report.counters["prefetch_refreshed"] > 0

    def test_status_snapshot_is_json_safe(self):
        service = ResolverService(small_config(duration=60.0))
        service.run()
        snapshot = service.status_snapshot()
        assert snapshot["service"]["counters"]["queries"] > 0
        text = json.dumps(snapshot)
        assert "NaN" not in text

    def test_service_metrics_published_under_service_scope(self):
        service = ResolverService(small_config(duration=120.0))
        report = service.run()
        assert report.metrics["service.queries"] == report.counters["queries"]
        assert report.metrics["service.cache.stale_hits"] == report.cache["stale_hits"]
        assert report.metrics["service.latency"]["count"] > 0
        rendered = service.registry.render_prometheus()
        assert "pyzdns_service_queries" in rendered


# ---------------------------------------------------------------------------
# serve-stale x prefetch x revalidation (the interaction suite)
# ---------------------------------------------------------------------------


def _answer(name, ttl, ip="192.0.2.55"):
    return ResourceRecord(N(name), RRType.A, DNSClass.IN, ttl, A(ip))


class TestStalePrefetchInteraction:
    def _seeded_service(self, **overrides):
        """A one-name service under a full-run blackout, with a hot,
        short-TTL answer seeded before start: the entry goes stale at
        t=10 and nothing upstream can ever refresh it."""
        cfg = small_config(
            catalog_size=1,
            duration=240.0,
            base_qps=2.0,
            warm_catalog=False,
            blackouts=((0.0, 1e9),),  # outlasts the post-duration drain
            prefetch_interval=30.0,
            prefetch_min_hits=1,
            prefetch_threshold=60.0,
            **overrides,
        )
        service = ResolverService(cfg)
        qname = service._catalog[0]
        service.cache.put_answer(qname, RRType.A, [_answer(str(qname), 10)])
        for _ in range(3):  # make it hot enough to qualify for prefetch
            service.cache.get_answer(qname, RRType.A)
        return service, qname

    def test_stale_entry_is_never_prefetched_younger(self):
        """The core satellite invariant: a served-stale entry must
        never be prefetch-refreshed into a *younger* stale entry.  The
        sweep skips non-live entries, failed refreshes store nothing,
        and the recorded expiry never moves."""
        service, qname = self._seeded_service()
        key = ("ans", qname.canonical_key(), int(RRType.A))
        expires_before = service.cache._entries[key][1]
        report = service.run()
        # the entry was served stale repeatedly during the blackout...
        assert report.counters["stale_answers_served"] > 0
        # ...the sweep never scheduled it (remaining <= 0 gate) and no
        # other name exists to prefetch
        assert report.counters["prefetch_scheduled"] == 0
        # ...and its lifetime never moved: same expiry, ageing honestly
        assert service.cache._entries[key][1] == expires_before == 10.0

    def test_revalidation_during_blackout_does_not_resurrect(self):
        """A zone delta mid-blackout invalidates the stale copy; with
        upstream dark, the re-resolution fails and the name goes
        honestly unanswered — the stale cap is never bypassed."""
        service, qname = self._seeded_service(
            deltas=1, delta_times=(120.0,), revalidation="incremental"
        )
        key = ("ans", qname.canonical_key(), int(RRType.A))
        report = service.run()
        # before the delta: stale serving worked
        assert report.counters["stale_answers_served"] > 0
        # the delta dropped the (stale) subtree...
        assert report.cache["invalidated"] >= 1
        assert key not in service.cache._entries
        # ...and afterwards the name failed rather than resurrecting
        assert report.counters["failed"] > 0
        assert service.cache.get_stale_answer(qname, RRType.A) is None

    def test_stale_cap_ends_service_during_long_blackout(self):
        """Past ``expires_at + stale_ttl`` the entry is finalised: a
        blackout outliving the stale window turns serves into failures."""
        service, qname = self._seeded_service(stale_ttl=50.0)
        report = service.run()
        assert report.counters["stale_answers_served"] > 0  # inside the window
        assert report.counters["failed"] > 0  # after the cap (t >= 60)
        assert service.cache.get_stale_answer(qname, RRType.A) is None
        assert report.cache["expired"] >= 1
