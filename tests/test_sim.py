"""Tests for the discrete-event simulator core."""

import pytest

from repro.net import SimFuture, SimulationError, Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        seen = []
        sim.call_later(2.0, lambda: seen.append("b"))
        sim.call_later(1.0, lambda: seen.append("a"))
        sim.call_later(3.0, lambda: seen.append("c"))
        sim.run()
        assert seen == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_same_time_events_run_fifo(self):
        sim = Simulator()
        seen = []
        for tag in "abc":
            sim.call_later(1.0, lambda t=tag: seen.append(t))
        sim.run()
        assert seen == ["a", "b", "c"]

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.call_later(1.0, lambda: sim.call_at(0.5, lambda: None))
        with pytest.raises(SimulationError):
            sim.run()

    def test_run_until_stops_clock(self):
        sim = Simulator()
        seen = []
        sim.call_later(1.0, lambda: seen.append(1))
        sim.call_later(5.0, lambda: seen.append(5))
        sim.run(until=2.0)
        assert seen == [1]
        assert sim.now == 2.0
        sim.run()
        assert seen == [1, 5]

    def test_run_until_with_empty_heap_advances_clock(self):
        sim = Simulator()
        sim.run(until=10.0)
        assert sim.now == 10.0


class TestFutures:
    def test_result_roundtrip(self):
        future = SimFuture()
        future.set_result(42)
        assert future.done
        assert future.result() == 42

    def test_unresolved_result_raises(self):
        with pytest.raises(SimulationError):
            SimFuture().result()

    def test_double_resolve_rejected(self):
        future = SimFuture()
        future.set_result(1)
        with pytest.raises(SimulationError):
            future.set_result(2)

    def test_exception_propagates(self):
        future = SimFuture()
        future.set_exception(ValueError("boom"))
        with pytest.raises(ValueError):
            future.result()

    def test_callback_after_done_fires_immediately(self):
        future = SimFuture()
        future.set_result(1)
        seen = []
        future.add_done_callback(lambda f: seen.append(f.result()))
        assert seen == [1]


class TestRoutines:
    def test_sleep_advances_clock(self):
        sim = Simulator()

        def routine():
            yield 1.5
            return sim.now

        future = sim.spawn(routine())
        sim.run()
        assert future.result() == 1.5

    def test_routine_waits_on_future(self):
        sim = Simulator()
        gate = SimFuture()

        def opener():
            yield 2.0
            gate.set_result("opened")

        def waiter():
            value = yield gate
            return (sim.now, value)

        sim.spawn(opener())
        result = sim.spawn(waiter())
        sim.run()
        assert result.result() == (2.0, "opened")

    def test_exception_in_awaited_future_is_thrown_in(self):
        sim = Simulator()
        gate = SimFuture()

        def routine():
            try:
                yield gate
            except ValueError:
                return "caught"

        future = sim.spawn(routine())
        sim.call_later(1.0, lambda: gate.set_exception(ValueError()))
        sim.run()
        assert future.result() == "caught"

    def test_crashing_routine_sets_exception(self):
        sim = Simulator()

        def routine():
            yield 0.1
            raise RuntimeError("dead")

        future = sim.spawn(routine())
        sim.run()
        with pytest.raises(RuntimeError):
            future.result()

    def test_bad_yield_type_is_error(self):
        sim = Simulator()

        def routine():
            yield "nonsense"

        future = sim.spawn(routine())
        sim.run()
        with pytest.raises(SimulationError):
            future.result()

    def test_run_all_collects_results(self):
        sim = Simulator()

        def worker(n):
            yield float(n)
            return n * 10

        results = sim.run_all(worker(n) for n in range(5))
        assert results == [0, 10, 20, 30, 40]

    def test_many_concurrent_routines(self):
        sim = Simulator()

        def worker(n):
            yield float(n % 7) / 10
            return 1

        results = sim.run_all(worker(n) for n in range(5000))
        assert sum(results) == 5000


class TestReadyQueueOrdering:
    def test_call_soon_and_due_timers_interleave_fifo(self):
        """Events due at the same timestamp run in scheduling order even
        though they live in different structures (ready deque vs heap)."""
        sim = Simulator()
        seen = []

        def at_one():
            seen.append("timer-a")  # scheduled first at t=1.0
            sim.call_soon(lambda: seen.append("soon-1"))  # third
            sim.call_at(1.0, lambda: seen.append("at-now"))  # fourth
            sim.call_soon(lambda: seen.append("soon-2"))  # fifth

        sim.call_later(1.0, at_one)
        sim.call_later(1.0, lambda: seen.append("timer-b"))  # second
        sim.run()
        assert seen == ["timer-a", "timer-b", "soon-1", "at-now", "soon-2"]

    def test_routine_resumption_is_fifo_with_timers(self):
        sim = Simulator()
        seen = []
        gate = SimFuture()

        def waiter():
            yield gate
            seen.append("resumed")

        sim.spawn(waiter())

        def fire():
            gate.set_result(None)  # queues the resumption...
            sim.call_soon(lambda: seen.append("after"))  # ...then this

        sim.call_later(1.0, fire)
        sim.run()
        assert seen == ["resumed", "after"]

    def test_call_soon_runs_before_later_timers(self):
        sim = Simulator()
        seen = []
        sim.call_soon(lambda: seen.append("soon"))
        sim.call_later(0.5, lambda: seen.append("timer"))
        sim.run()
        assert seen == ["soon", "timer"]


class TestTimerCancellation:
    def test_cancelled_timer_never_executes(self):
        sim = Simulator()
        seen = []
        handle = sim.call_later(1.0, lambda: seen.append("boom"))
        assert handle.cancel() is True
        sim.call_later(2.0, lambda: seen.append("ok"))
        sim.run()
        assert seen == ["ok"]
        assert sim.timers_cancelled == 1

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        seen = []
        handle = sim.call_later(1.0, lambda: seen.append("ran"))
        sim.run()
        assert seen == ["ran"]
        assert handle.cancel() is False
        assert sim.timers_cancelled == 0

    def test_double_cancel_counts_once(self):
        sim = Simulator()
        handle = sim.call_later(1.0, lambda: None)
        assert handle.cancel() is True
        assert handle.cancel() is False
        assert sim.timers_cancelled == 1

    def test_cancelled_ready_entry_is_skipped(self):
        sim = Simulator()
        seen = []
        handle = sim.call_soon(lambda: seen.append("no"))
        sim.call_soon(lambda: seen.append("yes"))
        handle.cancel()
        sim.run()
        assert seen == ["yes"]

    def test_cancellation_keeps_heap_o_live(self):
        """Mass cancellation compacts the heap: pending events track the
        live population, not the total ever scheduled."""
        sim = Simulator()
        handles = [sim.call_later(100.0 + i, lambda: None) for i in range(5000)]
        survivors = handles[::100]
        for handle in handles:
            if handle not in survivors:
                handle.cancel()
        assert sim.pending_events == len(survivors)
        assert sim.heap_compactions >= 1
        # the underlying heap itself stays O(live), not O(scheduled)
        assert len(sim._heap) <= 2 * len(survivors) + 64
        sim.run()
        assert sim.events_executed == len(survivors)

    def test_counters_shape(self):
        sim = Simulator()
        sim.call_later(1.0, lambda: None)
        handle = sim.call_later(2.0, lambda: None)
        handle.cancel()
        sim.run()
        counters = sim.counters()
        assert counters["timers_scheduled"] == 2
        assert counters["timers_cancelled"] == 1
        assert counters["events_executed"] == 1
        assert counters["peak_heap_size"] == 2
        assert set(counters) >= {
            "timers_scheduled",
            "timers_cancelled",
            "events_executed",
            "peak_heap_size",
            "peak_ready_depth",
            "heap_compactions",
        }


class TestTimeoutRace:
    def test_future_wins(self):
        sim = Simulator()
        inner = SimFuture()
        sim.call_later(1.0, lambda: inner.set_result("data"))
        race = sim.timeout_race(inner, timeout=5.0)

        def routine():
            return (yield race)

        future = sim.spawn(routine())
        sim.run()
        assert future.result() == "data"
        # the loser's timer is cancelled, so the clock never visits 5.0
        assert sim.now == 1.0
        assert sim.timers_cancelled == 1

    def test_timeout_wins(self):
        sim = Simulator()
        inner = SimFuture()
        race = sim.timeout_race(inner, timeout=2.0)

        def routine():
            return (yield race)

        future = sim.spawn(routine())
        sim.run()
        assert future.result() is None

    def test_late_result_after_timeout_is_ignored(self):
        sim = Simulator()
        inner = SimFuture()
        sim.call_later(3.0, lambda: inner.set_result("late"))
        race = sim.timeout_race(inner, timeout=1.0)

        def routine():
            return (yield race)

        future = sim.spawn(routine())
        sim.run()
        assert future.result() is None
