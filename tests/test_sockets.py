"""Tests for the simulated network fabric and socket/port accounting."""

import pytest

from repro.dnslib import Message, Name, Rcode, ResourceRecord, RRType, add_edns
from repro.dnslib.rdata.address import A
from repro.net import (
    LatencyModel,
    LossModel,
    PortExhaustedError,
    ServerReply,
    SimNetwork,
    SimUDPSocket,
    Simulator,
    SourceIPPool,
)


class EchoServer:
    """Answers every query with one A record; records what it saw."""

    def __init__(self, delay=0.0, drop=False, answer_count=1):
        self.delay = delay
        self.drop = drop
        self.answer_count = answer_count
        self.queries = []

    def handle_query(self, query, client_ip, now, protocol):
        self.queries.append((query.question.name.to_text(), client_ip, now, protocol))
        if self.drop:
            return None
        response = query.make_response(authoritative=True)
        for i in range(self.answer_count):
            response.answers.append(
                ResourceRecord(query.question.name, RRType.A, 1, 300, A(f"192.0.2.{(i % 254) + 1}"))
            )
        return ServerReply(response, delay=self.delay)


def build(seed=0, wire_mode="always", latency=None, loss=None, server=None):
    sim = Simulator()
    network = SimNetwork(sim, seed=seed, wire_mode=wire_mode)
    server = server or EchoServer()
    network.register_server(
        "10.0.0.1", server, latency=latency or LatencyModel(median=0.02), loss=loss
    )
    return sim, network, server


def run_query(sim, network, name="example.com", timeout=3.0, src="198.18.0.0"):
    message = Message.make_query(name, RRType.A, txid=99)

    def routine():
        return (yield network.query_udp(src, "10.0.0.1", message, timeout))

    future = sim.spawn(routine())
    sim.run()
    return future.result()


class TestSourceIPPool:
    def test_slash32_has_one_ip(self):
        pool = SourceIPPool(prefix_length=32, ports_per_ip=3)
        assert pool.ip_count == 1
        assert pool.capacity == 3

    def test_slash28_has_sixteen_ips(self):
        assert SourceIPPool(prefix_length=28).ip_count == 16

    def test_exhaustion(self):
        pool = SourceIPPool(prefix_length=32, ports_per_ip=2)
        pool.acquire()
        pool.acquire()
        with pytest.raises(PortExhaustedError):
            pool.acquire()

    def test_release_and_reacquire(self):
        pool = SourceIPPool(prefix_length=32, ports_per_ip=1)
        binding = pool.acquire()
        pool.release(binding)
        assert pool.acquire() == binding

    def test_distinct_bindings(self):
        pool = SourceIPPool(prefix_length=29, ports_per_ip=10)
        bindings = {pool.acquire() for _ in range(80)}
        assert len(bindings) == 80

    def test_in_use_accounting(self):
        pool = SourceIPPool(prefix_length=32, ports_per_ip=5)
        a = pool.acquire()
        pool.acquire()
        assert pool.in_use == 2
        pool.release(a)
        assert pool.in_use == 1

    def test_invalid_prefix(self):
        with pytest.raises(ValueError):
            SourceIPPool(prefix_length=40)


class TestQueryPath:
    def test_response_arrives_with_answer(self):
        sim, network, server = build()
        response = run_query(sim, network)
        assert response is not None
        assert response.id == 99
        assert response.answers[0].rdata == A("192.0.2.1")
        assert server.queries[0][3] == "udp"

    def test_latency_is_charged(self):
        sim, network, _ = build(latency=LatencyModel(median=0.05, sigma=0.0))
        run_query(sim, network)
        # full event drain includes the 3s timeout race timer
        assert sim.now >= 0.05

    def test_unrouted_destination_times_out(self):
        sim = Simulator()
        network = SimNetwork(sim)
        message = Message.make_query("x.com", RRType.A)

        def routine():
            return (yield network.query_udp("198.18.0.0", "10.9.9.9", message, 1.5))

        future = sim.spawn(routine())
        sim.run()
        assert future.result() is None
        assert sim.now == pytest.approx(1.5)

    def test_server_drop_times_out(self):
        sim, network, _ = build(server=EchoServer(drop=True))
        assert run_query(sim, network) is None
        assert network.stats.server_drops == 1

    def test_total_loss_times_out(self):
        sim, network, _ = build(loss=LossModel(1.0))
        assert run_query(sim, network) is None
        assert network.stats.lost_outbound == 1

    def test_server_delay_defers_delivery(self):
        sim, network, _ = build(server=EchoServer(delay=0.5), latency=LatencyModel(median=0.02, sigma=0.0))
        message = Message.make_query("a.com", RRType.A)
        arrival = []

        def routine():
            response = yield network.query_udp("198.18.0.0", "10.0.0.1", message, 3.0)
            arrival.append(sim.now)
            return response

        future = sim.spawn(routine())
        sim.run()
        assert future.result() is not None
        assert arrival[0] == pytest.approx(0.52, abs=0.01)

    def test_stats_count_queries(self):
        sim, network, _ = build()
        run_query(sim, network)
        assert network.stats.udp_queries == 1


class TestTruncation:
    def test_large_response_truncated_without_edns(self):
        # 40 answers won't fit in 512 bytes
        sim, network, _ = build(server=EchoServer(answer_count=40))
        response = run_query(sim, network)
        assert response.flags.truncated
        assert not response.answers
        assert network.stats.truncated_replies == 1

    def test_edns_payload_avoids_truncation(self):
        sim, network, _ = build(server=EchoServer(answer_count=40))
        message = Message.make_query("example.com", RRType.A)
        add_edns(message, payload_size=4096)

        def routine():
            return (yield network.query_udp("198.18.0.0", "10.0.0.1", message, 3.0))

        future = sim.spawn(routine())
        sim.run()
        assert not future.result().flags.truncated
        assert len(future.result().answers) == 40

    def test_tcp_never_truncates(self):
        sim, network, _ = build(server=EchoServer(answer_count=40))
        message = Message.make_query("example.com", RRType.A)

        def routine():
            return (yield network.query_tcp("198.18.0.0", "10.0.0.1", message, 3.0))

        future = sim.spawn(routine())
        sim.run()
        assert not future.result().flags.truncated
        assert len(future.result().answers) == 40
        assert network.stats.tcp_queries == 1

    def test_tcp_costs_an_extra_round_trip(self):
        sim, network, _ = build(latency=LatencyModel(median=0.05, sigma=0.0))
        message = Message.make_query("example.com", RRType.A)
        finished = []

        def routine(fn):
            yield fn("198.18.0.0", "10.0.0.1", message, 3.0)
            finished.append(sim.now)

        sim.spawn(routine(network.query_udp))
        sim.run()
        udp_done = finished.pop()
        sim2, network2, _ = build(latency=LatencyModel(median=0.05, sigma=0.0))

        def routine2():
            yield network2.query_tcp("198.18.0.0", "10.0.0.1", message, 3.0)
            finished.append(sim2.now)

        sim2.spawn(routine2())
        sim2.run()
        assert finished[0] > udp_done


class TestWireModes:
    def test_always_validates_every_packet(self):
        sim, network, _ = build(wire_mode="always")
        run_query(sim, network)
        assert network.stats.wire_validations == 2  # query + reply

    def test_never_validates_nothing(self):
        sim, network, _ = build(wire_mode="never")
        response = run_query(sim, network)
        assert response is not None
        assert network.stats.wire_validations == 0

    def test_sampled_validates_some(self):
        sim = Simulator()
        network = SimNetwork(sim, wire_mode="sampled", wire_sample=4)
        network.register_server("10.0.0.1", EchoServer(), latency=LatencyModel(median=0.01))

        def routine(i):
            message = Message.make_query(f"n{i}.com", RRType.A, txid=i)
            return (yield network.query_udp("198.18.0.0", "10.0.0.1", message, 3.0))

        results = sim.run_all(routine(i) for i in range(20))
        assert all(r is not None for r in results)
        assert 0 < network.stats.wire_validations < 40

    def test_invalid_wire_mode_rejected(self):
        with pytest.raises(ValueError):
            SimNetwork(Simulator(), wire_mode="bogus")


class TestSimUDPSocket:
    def test_socket_binds_from_pool(self):
        sim, network, _ = build()
        pool = SourceIPPool(prefix_length=32, ports_per_ip=10)
        sock = SimUDPSocket(network, pool)
        assert pool.in_use == 1
        message = Message.make_query("example.com", RRType.A)

        def routine():
            return (yield sock.query("10.0.0.1", message, 3.0))

        future = sim.spawn(routine())
        sim.run()
        assert future.result() is not None
        sock.close()
        assert pool.in_use == 0

    def test_closed_socket_rejects_queries(self):
        sim, network, _ = build()
        pool = SourceIPPool()
        sock = SimUDPSocket(network, pool)
        sock.close()
        with pytest.raises(RuntimeError):
            sock.query("10.0.0.1", Message.make_query("a.b", RRType.A), 1.0)

    def test_double_close_is_safe(self):
        _, network, _ = build()
        pool = SourceIPPool()
        sock = SimUDPSocket(network, pool)
        sock.close()
        sock.close()
        assert pool.in_use == 0
