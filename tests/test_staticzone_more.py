"""Static zone server registered on the simulated network: the user
path of serving a custom zone inside the simulation."""

import pytest

from repro.core import ExternalMachine, ResolverConfig, SimDriver, Status
from repro.dnslib import RRType, parse_zone
from repro.ecosystem.staticzone import StaticZoneServer
from repro.net import LatencyModel, SimNetwork, SimUDPSocket, Simulator, SourceIPPool

ZONE = """\
$ORIGIN lab.test.
$TTL 60
@     IN SOA ns1.lab.test. admin.lab.test. 1 2 3 4 5
@     IN NS  ns1
ns1   IN A   10.5.0.1
@     IN A   192.0.2.200
alias IN CNAME @
"""


@pytest.fixture()
def setup():
    sim = Simulator()
    network = SimNetwork(sim, wire_mode="always")
    server = StaticZoneServer(parse_zone(ZONE))
    network.register_server("10.5.0.1", server, latency=LatencyModel(median=0.01))
    driver = SimDriver(network)
    socket = SimUDPSocket(network, SourceIPPool())
    return sim, driver, socket


def lookup(sim, driver, socket, name, qtype=RRType.A):
    machine = ExternalMachine(["10.5.0.1"], ResolverConfig(retries=0))
    future = sim.spawn(driver.execute(machine.resolve(name, qtype), socket))
    sim.run()
    return future.result()


def test_apex_a_over_simulated_network(setup):
    sim, driver, socket = setup
    result = lookup(sim, driver, socket, "lab.test")
    assert result.status == Status.NOERROR
    assert result.answers[0].rdata.address == "192.0.2.200"


def test_cname_alias(setup):
    sim, driver, socket = setup
    result = lookup(sim, driver, socket, "alias.lab.test")
    assert result.status == Status.NOERROR
    types = {int(record.rrtype) for record in result.answers}
    assert int(RRType.CNAME) in types


def test_nxdomain_through_full_wire_path(setup):
    sim, driver, socket = setup
    result = lookup(sim, driver, socket, "nothere.lab.test")
    assert result.status == Status.NXDOMAIN
    assert result.authorities  # SOA travelled the wire intact


def test_soa_query(setup):
    sim, driver, socket = setup
    result = lookup(sim, driver, socket, "lab.test", RRType.SOA)
    assert result.status == Status.NOERROR
    assert result.answers[0].rdata.serial == 1
