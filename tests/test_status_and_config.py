"""Tests for status codes, resolver configuration, and cost models."""

import pytest

from repro.core import ClientCostModel, ResolverConfig, Status, status_from_rcode
from repro.dnslib import Rcode


class TestStatus:
    def test_success_includes_nxdomain(self):
        assert Status.NOERROR.is_success
        assert Status.NXDOMAIN.is_success

    @pytest.mark.parametrize("status", [
        Status.SERVFAIL, Status.REFUSED, Status.TIMEOUT,
        Status.ITERATIVE_TIMEOUT, Status.TRUNCATED, Status.ERROR,
        Status.ITER_LIMIT, Status.RATE_LIMITED, Status.FORMERR,
    ])
    def test_failures(self, status):
        assert not status.is_success

    def test_string_form(self):
        assert str(Status.NOERROR) == "NOERROR"
        assert f"{Status.TIMEOUT}" == "TIMEOUT"

    @pytest.mark.parametrize("rcode,status", [
        (Rcode.NOERROR, Status.NOERROR),
        (Rcode.NXDOMAIN, Status.NXDOMAIN),
        (Rcode.SERVFAIL, Status.SERVFAIL),
        (Rcode.REFUSED, Status.REFUSED),
        (Rcode.FORMERR, Status.FORMERR),
        (Rcode.NOTIMP, Status.ERROR),
    ])
    def test_rcode_mapping(self, rcode, status):
        assert status_from_rcode(rcode) == status

    def test_status_is_json_friendly(self):
        import json

        assert json.dumps({"status": str(Status.NXDOMAIN)}) == '{"status": "NXDOMAIN"}'


class TestResolverConfig:
    def test_defaults_are_sane(self):
        config = ResolverConfig()
        assert config.retries >= 1
        assert config.iteration_timeout > 0
        assert config.max_queries > config.max_referrals
        assert config.tcp_on_truncated
        assert config.retry_servfail

    def test_custom_values(self):
        config = ResolverConfig(retries=9, iteration_timeout=0.5)
        assert config.retries == 9
        assert config.iteration_timeout == 0.5


class TestClientCostModel:
    def test_iterative_costs_more_per_packet(self):
        base = ClientCostModel()
        iterative = ClientCostModel.for_iterative()
        assert iterative.per_send > base.per_send
        assert iterative.per_receive > base.per_receive

    def test_external_plateau_calibration(self):
        """24 cores / (send+receive) should land near the paper's ~95K
        queries/second plateau for external-resolver scans."""
        costs = ClientCostModel()
        plateau = 24 / (costs.per_send + costs.per_receive)
        assert 80_000 < plateau < 110_000

    def test_iterative_plateau_calibration(self):
        """With ~2.3 queries per warm-cache lookup, the iterative
        plateau should land near the paper's 18K resolutions/second."""
        costs = ClientCostModel.for_iterative()
        per_lookup = 2.3 * (costs.per_send + costs.per_receive)
        plateau = 24 / per_lookup
        assert 12_000 < plateau < 24_000
