"""Tests for SVCB/HTTPS service-binding records (RFC 9460)."""

import pytest

from repro.dnslib import Name, ResourceRecord, RRType, WireError, WireReader, WireWriter
from repro.dnslib.rdata.svcb import (
    HTTPS,
    KEY_ALPN,
    KEY_IPV4HINT,
    KEY_NO_DEFAULT_ALPN,
    KEY_PORT,
    SVCB,
    alpn_value,
    ipv4hint_value,
    port_value,
)

N = Name.from_text


def roundtrip(rdata):
    writer = WireWriter()
    rdata.to_wire(writer)
    wire = writer.getvalue()
    return type(rdata).from_wire(WireReader(wire), len(wire))


class TestEncoding:
    def test_alias_mode_roundtrip(self):
        rdata = HTTPS(0, N("pool.svc.example"))
        assert roundtrip(rdata) == rdata
        assert rdata.is_alias_mode

    def test_service_mode_roundtrip(self):
        rdata = HTTPS(
            1,
            N("."),
            (
                (KEY_ALPN, alpn_value("h2", "h3")),
                (KEY_PORT, port_value(8443)),
                (KEY_IPV4HINT, ipv4hint_value("192.0.2.1", "192.0.2.2")),
            ),
        )
        decoded = roundtrip(rdata)
        assert decoded == rdata
        assert decoded.param(KEY_PORT) == port_value(8443)

    def test_params_sorted_on_construction(self):
        rdata = SVCB(1, N("x.example"), ((KEY_PORT, b"\x01\xbb"), (KEY_ALPN, alpn_value("h2"))))
        assert [key for key, _ in rdata.params] == [KEY_ALPN, KEY_PORT]

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValueError):
            SVCB(1, N("x.example"), ((KEY_PORT, b"\x00\x01"), (KEY_PORT, b"\x00\x02")))

    def test_unsorted_wire_rejected(self):
        # hand-craft: priority, root target, port before alpn
        wire = b"\x00\x01" + b"\x00" + b"\x00\x03\x00\x02\x01\xbb" + b"\x00\x01\x00\x03\x02h2"
        with pytest.raises(WireError):
            SVCB.from_wire(WireReader(wire), len(wire))

    def test_overrunning_param_rejected(self):
        wire = b"\x00\x01" + b"\x00" + b"\x00\x03\x00\xff\x01"
        with pytest.raises(WireError):
            SVCB.from_wire(WireReader(wire), len(wire))

    def test_through_message_section(self):
        rdata = HTTPS(1, N("."), ((KEY_ALPN, alpn_value("h3")),))
        record = ResourceRecord(N("example.com"), RRType.HTTPS, 1, 300, rdata)
        writer = WireWriter()
        record.to_wire(writer)
        from repro.dnslib import ResourceRecord as RR

        decoded = RR.from_wire(WireReader(writer.getvalue()))
        assert decoded.rdata == rdata


class TestPresentation:
    def test_text_format(self):
        rdata = HTTPS(
            1, N("."), ((KEY_ALPN, alpn_value("h2", "h3")), (KEY_PORT, port_value(443)))
        )
        assert rdata.to_text() == ". 1 alpn=h2,h3 port=443".replace(". 1", "1 .")

    def test_no_default_alpn_renders_bare(self):
        rdata = SVCB(1, N("t.example"), ((KEY_NO_DEFAULT_ALPN, b""),))
        assert "no-default-alpn" in rdata.to_text()
        assert "no-default-alpn=" not in rdata.to_text()

    def test_json_answer(self):
        rdata = HTTPS(
            2,
            N("svc.example.net"),
            ((KEY_IPV4HINT, ipv4hint_value("203.0.113.5")),),
        )
        answer = rdata.zdns_answer()
        assert answer["priority"] == 2
        assert answer["target"] == "svc.example.net"
        assert answer["params"]["ipv4hint"] == "203.0.113.5"

    def test_helpers_validate(self):
        with pytest.raises(ValueError):
            alpn_value("")
        with pytest.raises(ValueError):
            ipv4hint_value("999.1.2.3")
