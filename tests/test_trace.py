"""Tests for lookup-chain (trace) capture and its Appendix C format."""

import json

from repro.core import Resolver, SelectiveCache, Status, Trace, TraceStep, message_to_json
from repro.dnslib import Message, Name, ResourceRecord, RRType
from repro.dnslib.rdata.address import A
from repro.ecosystem import EcosystemParams, build_internet


class TestTraceStructures:
    def test_step_json_fields(self):
        step = TraceStep(
            name="google.com",
            layer="com",
            depth=2,
            name_server="192.5.6.30:53",
            cached=False,
            try_count=1,
            qtype=1,
        )
        data = step.to_json()
        assert data["name"] == "google.com"
        assert data["layer"] == "com"
        assert data["depth"] == 2
        assert data["name_server"] == "192.5.6.30:53"
        assert data["cached"] is False
        assert data["try"] == 1
        assert data["type"] == 1
        assert "results" not in data

    def test_step_with_results(self):
        message = Message.make_query("a.com", RRType.A).make_response()
        message.answers.append(
            ResourceRecord(Name.from_text("a.com"), RRType.A, 1, 60, A("9.9.9.9"))
        )
        results = message_to_json(message, "1.2.3.4:53")
        step = TraceStep(
            name="a.com", layer=".", depth=1, name_server="1.2.3.4:53",
            cached=False, try_count=1, qtype=1, results=results,
        )
        data = step.to_json()
        assert data["results"]["resolver"] == "1.2.3.4:53"
        assert data["results"]["answers"][0]["answer"] == "9.9.9.9"
        assert data["results"]["flags"]["response"] is True

    def test_trace_query_count_excludes_cached(self):
        trace = Trace()
        trace.add(TraceStep("a", ".", 1, "cache", True, 0, 1))
        trace.add(TraceStep("a", "com", 2, "1.1.1.1:53", False, 1, 1))
        assert trace.query_count == 1
        assert len(trace) == 2
        assert len(list(iter(trace))) == 2

    def test_message_to_json_sections(self):
        message = Message.make_query("b.com", RRType.A).make_response()
        data = message_to_json(message, "x")
        assert set(data) >= {"answers", "authorities", "additionals", "flags", "protocol", "resolver"}


class TestEndToEndTrace:
    def test_full_chain_is_json_serialisable(self):
        internet = build_internet(params=EcosystemParams(seed=66))
        resolver = Resolver(internet, mode="iterative", record_trace=True)
        synth = internet.synth
        name = next(
            Name.from_text(f"tr-{i}.com")
            for i in range(20_000)
            if synth.profile(Name.from_text(f"tr-{i}.com")).exists
        )
        result = resolver.lookup(name, RRType.A)
        assert result.status == Status.NOERROR
        payload = json.dumps(result.to_json())
        decoded = json.loads(payload)
        assert decoded["status"] == "NOERROR"
        steps = decoded["trace"]
        assert steps[0]["layer"] == "."
        # every non-cached step carries the full response block
        for step in steps:
            if not step["cached"] and step["status"] == "NOERROR":
                assert "results" in step
                assert "flags" in step["results"]

    def test_depth_increases_down_the_chain(self):
        internet = build_internet(params=EcosystemParams(seed=66))
        resolver = Resolver(
            internet, mode="iterative", record_trace=True, cache=SelectiveCache(capacity=2)
        )
        synth = internet.synth
        name = next(
            Name.from_text(f"tr2-{i}.net")
            for i in range(20_000)
            if synth.profile(Name.from_text(f"tr2-{i}.net")).exists
        )
        result = resolver.lookup(name, RRType.A)
        depths = [step.depth for step in result.trace if not step.cached]
        assert depths == sorted(depths)
