"""Tests for response validation / sanitisation (poisoning defences)."""

import random

import pytest

from repro.core import (
    IterativeMachine,
    ResolverConfig,
    SelectiveCache,
    Status,
    in_bailiwick,
    sanitize_response,
    validate_answer_chain,
    validate_response_shape,
)
from repro.dnslib import (
    DNSClass,
    Flags,
    Message,
    Name,
    ResourceRecord,
    RRType,
    add_edns,
)
from repro.dnslib.rdata.address import A
from repro.dnslib.rdata.names import CNAME, NS

N = Name.from_text


def rr(name, rrtype, rdata, ttl=300):
    return ResourceRecord(N(name), rrtype, DNSClass.IN, ttl, rdata)


def response_for(qname="www.example.com", qtype=RRType.A):
    query = Message.make_query(qname, qtype, txid=5)
    return query.make_response()


class TestBailiwick:
    def test_subzone_in_bailiwick(self):
        assert in_bailiwick(N("a.example.com"), N("example.com"))
        assert in_bailiwick(N("example.com"), N("example.com"))

    def test_sibling_out_of_bailiwick(self):
        assert not in_bailiwick(N("other.com"), N("example.com"))
        assert not in_bailiwick(N("example.net"), N("example.com"))

    def test_everything_under_root(self):
        assert in_bailiwick(N("anything.at.all"), Name.root())


class TestShapeValidation:
    def test_valid_response_passes(self):
        response = response_for()
        assert validate_response_shape(N("www.example.com"), int(RRType.A), response) is None

    def test_non_response_rejected(self):
        query = Message.make_query("www.example.com", RRType.A)
        reason = validate_response_shape(N("www.example.com"), int(RRType.A), query)
        assert reason == "not a response"

    def test_question_name_mismatch_rejected(self):
        response = response_for("other.example.com")
        reason = validate_response_shape(N("www.example.com"), int(RRType.A), response)
        assert "mismatch" in reason

    def test_question_type_mismatch_rejected(self):
        response = response_for(qtype=RRType.MX)
        reason = validate_response_shape(N("www.example.com"), int(RRType.A), response)
        assert "type mismatch" in reason

    def test_any_query_accepts_any_echo(self):
        response = response_for(qtype=RRType.TXT)
        assert validate_response_shape(N("www.example.com"), int(RRType.ANY), response) is None


class TestSanitisation:
    def test_clean_response_untouched(self):
        response = response_for()
        response.answers.append(rr("www.example.com", RRType.A, A("1.2.3.4")))
        cleaned, report = sanitize_response(
            response, N("www.example.com"), int(RRType.A), N("example.com")
        )
        assert report.ok
        assert cleaned.answers == response.answers

    def test_out_of_bailiwick_answer_stripped(self):
        response = response_for()
        response.answers.append(rr("www.example.com", RRType.A, A("1.2.3.4")))
        # poisoning attempt: gratuitous record for a bank
        response.answers.append(rr("bank.example.net", RRType.A, A("6.6.6.6")))
        cleaned, report = sanitize_response(
            response, N("www.example.com"), int(RRType.A), N("example.com")
        )
        assert not report.ok
        assert len(cleaned.answers) == 1
        assert cleaned.answers[0].name == N("www.example.com")

    def test_out_of_bailiwick_glue_stripped(self):
        response = response_for()
        response.authorities.append(rr("example.com", RRType.NS, NS(N("ns1.evil.net"))))
        response.additionals.append(rr("ns1.evil.net", RRType.A, A("6.6.6.6")))
        cleaned, report = sanitize_response(
            response, N("www.example.com"), int(RRType.A), N("example.com")
        )
        assert not cleaned.additionals  # glue outside com is dropped
        assert cleaned.authorities  # NS rdata itself may point anywhere

    def test_opt_record_survives(self):
        response = response_for()
        add_edns(response)
        cleaned, _ = sanitize_response(
            response, N("www.example.com"), int(RRType.A), N("example.com")
        )
        assert any(int(r.rrtype) == int(RRType.OPT) for r in cleaned.additionals)

    def test_absurd_ttl_stripped(self):
        response = response_for()
        response.answers.append(rr("www.example.com", RRType.A, A("1.2.3.4"), ttl=2**31))
        cleaned, report = sanitize_response(
            response, N("www.example.com"), int(RRType.A), N("example.com")
        )
        assert not cleaned.answers
        assert not report.ok


class TestAnswerChain:
    def test_direct_answer_ok(self):
        response = response_for()
        response.answers.append(rr("www.example.com", RRType.A, A("1.2.3.4")))
        assert validate_answer_chain(response, N("www.example.com"), int(RRType.A))

    def test_cname_chain_ok(self):
        response = response_for()
        response.answers.append(rr("www.example.com", RRType.CNAME, CNAME(N("cdn.example.org"))))
        response.answers.append(rr("cdn.example.org", RRType.A, A("1.2.3.4")))
        assert validate_answer_chain(response, N("www.example.com"), int(RRType.A))

    def test_unrelated_answer_rejected(self):
        response = response_for()
        response.answers.append(rr("www.example.com", RRType.A, A("1.2.3.4")))
        response.answers.append(rr("gratuitous.com", RRType.A, A("6.6.6.6")))
        assert not validate_answer_chain(response, N("www.example.com"), int(RRType.A))

    def test_chain_must_be_ordered(self):
        response = response_for()
        # A for the target appears before the CNAME introducing it
        response.answers.append(rr("cdn.example.org", RRType.A, A("1.2.3.4")))
        response.answers.append(rr("www.example.com", RRType.CNAME, CNAME(N("cdn.example.org"))))
        assert not validate_answer_chain(response, N("www.example.com"), int(RRType.A))


class TestMachineIntegration:
    ROOTS = ["199.1.1.1"]

    def drive(self, machine_gen, responder):
        try:
            effect = next(machine_gen)
            while True:
                effect = machine_gen.send(responder(effect))
        except StopIteration as stop:
            return stop.value

    def test_wrong_question_echo_is_retried_then_formerr(self):
        def responder(effect):
            bogus = Message.make_query("attacker.example", RRType.A).make_response()
            return bogus

        machine = IterativeMachine(
            SelectiveCache(), self.ROOTS, ResolverConfig(retries=1), random.Random(0)
        )
        result = self.drive(machine.resolve("victim.com", RRType.A), responder)
        assert result.status == Status.FORMERR

    def test_validation_can_be_disabled(self):
        def responder(effect):
            bogus = Message.make_query("attacker.example", RRType.A, txid=0).make_response()
            bogus.answers.append(rr("victim.com", RRType.A, A("9.9.9.9")))
            return bogus

        config = ResolverConfig(retries=0, validate_responses=False)
        machine = IterativeMachine(SelectiveCache(), self.ROOTS, config, random.Random(0))
        result = self.drive(machine.resolve("victim.com", RRType.A), responder)
        # without validation the forged answer is accepted
        assert result.status == Status.NOERROR
