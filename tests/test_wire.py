"""Tests for the low-level wire reader/writer and name compression."""

import pytest

from repro.dnslib import Name, WireError, WireReader, WireWriter


class TestPrimitives:
    def test_integers_roundtrip(self):
        writer = WireWriter()
        writer.write_u8(0xAB)
        writer.write_u16(0xBEEF)
        writer.write_u32(0xDEADBEEF)
        reader = WireReader(writer.getvalue())
        assert reader.read_u8() == 0xAB
        assert reader.read_u16() == 0xBEEF
        assert reader.read_u32() == 0xDEADBEEF
        assert reader.at_end()

    def test_patch_u16(self):
        writer = WireWriter()
        offset = len(writer)
        writer.write_u16(0)
        writer.write(b"xy")
        writer.patch_u16(offset, 2)
        assert writer.getvalue() == b"\x00\x02xy"

    def test_read_past_end_raises(self):
        reader = WireReader(b"\x01")
        with pytest.raises(WireError):
            reader.read_u16()

    def test_remaining(self):
        reader = WireReader(b"abcd")
        reader.read(1)
        assert reader.remaining() == 3


class TestNameEncoding:
    def roundtrip(self, text):
        writer = WireWriter()
        writer.write_name(Name.from_text(text))
        reader = WireReader(writer.getvalue())
        return reader.read_name()

    def test_simple_roundtrip(self):
        assert self.roundtrip("www.example.com") == Name.from_text("www.example.com")

    def test_root_roundtrip(self):
        assert self.roundtrip(".").is_root

    def test_compression_reuses_suffix(self):
        writer = WireWriter()
        writer.write_name(Name.from_text("www.example.com"))
        first_len = len(writer)
        writer.write_name(Name.from_text("mail.example.com"))
        # second name should be 'mail' label (5 bytes) + 2-byte pointer
        assert len(writer) - first_len == 5 + 2
        reader = WireReader(writer.getvalue())
        assert reader.read_name() == Name.from_text("www.example.com")
        assert reader.read_name() == Name.from_text("mail.example.com")

    def test_compression_case_insensitive(self):
        writer = WireWriter()
        writer.write_name(Name.from_text("EXAMPLE.com"))
        writer.write_name(Name.from_text("www.example.COM"))
        reader = WireReader(writer.getvalue())
        assert reader.read_name() == Name.from_text("example.com")
        assert reader.read_name() == Name.from_text("www.example.com")

    def test_full_pointer_to_identical_name(self):
        writer = WireWriter()
        writer.write_name(Name.from_text("a.b"))
        before = len(writer)
        writer.write_name(Name.from_text("a.b"))
        assert len(writer) - before == 2  # single pointer

    def test_compression_disabled(self):
        writer = WireWriter(enable_compression=False)
        writer.write_name(Name.from_text("a.example.com"))
        writer.write_name(Name.from_text("b.example.com"))
        reader = WireReader(writer.getvalue())
        assert reader.read_name() == Name.from_text("a.example.com")
        assert reader.read_name() == Name.from_text("b.example.com")

    def test_reader_offset_after_pointer(self):
        writer = WireWriter()
        writer.write_name(Name.from_text("x.y"))
        writer.write_name(Name.from_text("x.y"))
        writer.write_u16(0x1234)
        reader = WireReader(writer.getvalue())
        reader.read_name()
        reader.read_name()
        assert reader.read_u16() == 0x1234


class TestMalformedNames:
    def test_pointer_loop_rejected(self):
        # name at offset 0 pointing at itself
        data = b"\xc0\x00"
        with pytest.raises(WireError):
            WireReader(data).read_name()

    def test_forward_pointer_rejected(self):
        # pointer to offset 4, beyond itself
        data = b"\xc0\x04\x00\x00\x01a\x00"
        with pytest.raises(WireError):
            WireReader(data).read_name()

    def test_mutual_pointer_loop_rejected(self):
        # label then pointer back to start -> infinite a.a.a...
        data = b"\x01a\xc0\x00"
        with pytest.raises(WireError):
            WireReader(WireReader(data).data, 0).read_name()

    def test_label_runs_off_end(self):
        data = b"\x05ab"
        with pytest.raises(WireError):
            WireReader(data).read_name()

    def test_name_runs_off_end_without_terminator(self):
        data = b"\x01a"
        with pytest.raises(WireError):
            WireReader(data).read_name()

    def test_reserved_label_type_rejected(self):
        data = b"\x41a\x00"  # 0x40 upper bits
        with pytest.raises(WireError):
            WireReader(data).read_name()

    def test_overlong_decoded_name_rejected(self):
        # chain of 63-byte labels exceeding 255 total
        label = b"\x3f" + b"a" * 63
        data = label * 5 + b"\x00"
        with pytest.raises(WireError):
            WireReader(data).read_name()

    def test_truncated_pointer(self):
        with pytest.raises(WireError):
            WireReader(b"\xc0").read_name()
