"""Tests for workload generators (corpus and IPv4 space)."""

import pytest

from repro.workloads import (
    CorpusConfig,
    DomainCorpus,
    census,
    is_public,
    permuted_ipv4,
    ptr_names,
)


@pytest.fixture(scope="module")
def corpus():
    return DomainCorpus(CorpusConfig(seed=5))


class TestCorpus:
    def test_deterministic(self, corpus):
        again = DomainCorpus(CorpusConfig(seed=5))
        assert list(corpus.fqdns(100)) == list(again.fqdns(100))

    def test_seed_changes_names(self, corpus):
        other = DomainCorpus(CorpusConfig(seed=6))
        assert list(corpus.fqdns(50)) != list(other.fqdns(50))

    def test_fqdn_is_under_base(self, corpus):
        for i in range(200):
            fqdn = corpus.fqdn(i)
            base = corpus.base_domain(i)
            assert fqdn == base or fqdn.endswith("." + base)

    def test_fqdns_per_domain_ratio(self, corpus):
        count = 20_000
        bases = {corpus.base_domain(i) for i in range(count)}
        ratio = count / len(bases)
        assert 2.0 <= ratio <= 3.0  # paper: 234M/93M ~= 2.5

    def test_class_shares_match_table3(self, corpus):
        result = census(corpus, 30_000)
        total = result.total_fqdns
        assert 0.52 <= result.fqdns["legacy"] / total <= 0.59  # 55.3%
        assert 0.35 <= result.fqdns["cc"] / total <= 0.42  # 38.7%
        assert 0.04 <= result.fqdns["ng"] / total <= 0.08  # 6.0%

    def test_census_domain_counts_are_distinct_bases(self, corpus):
        result = census(corpus, 5000)
        assert result.total_domains <= 5000
        assert result.total_domains >= 1000

    def test_census_tld_counts(self, corpus):
        result = census(corpus, 30_000)
        assert result.tlds["legacy"] == 5
        assert result.tlds["cc"] >= 25
        assert result.tlds["ng"] >= 10

    def test_base_domains_are_unique(self, corpus):
        bases = list(corpus.base_domains(500))
        assert len(bases) == len(set(bases)) == 500

    def test_start_offset_skips(self, corpus):
        a = list(corpus.fqdns(10, start=0))
        b = list(corpus.fqdns(10, start=5))
        assert a[5:] == b[:5]


class TestIPv4:
    def test_all_public(self):
        for ip in permuted_ipv4(5000, seed=1):
            assert is_public(int(ip.split(".")[0]))

    def test_no_duplicates_in_window(self):
        ips = list(permuted_ipv4(50_000, seed=2))
        assert len(set(ips)) == len(ips)

    def test_deterministic(self):
        assert list(permuted_ipv4(100, seed=3)) == list(permuted_ipv4(100, seed=3))

    def test_seed_changes_order(self):
        assert list(permuted_ipv4(100, seed=1)) != list(permuted_ipv4(100, seed=2))

    def test_start_resumes(self):
        full = list(permuted_ipv4(200, seed=4))
        # a later start skips earlier raw indices (not a strict suffix
        # because exclusions differ, but must overlap heavily)
        resumed = list(permuted_ipv4(100, seed=4, start=100))
        assert set(resumed) & set(full)

    def test_spreads_across_slash8(self):
        firsts = {ip.split(".")[0] for ip in permuted_ipv4(2000, seed=5)}
        assert len(firsts) > 100

    def test_ptr_names_format(self):
        name = next(iter(ptr_names(1, seed=6)))
        assert name.endswith(".in-addr.arpa")
        assert len(name.split(".")) == 6

    def test_excluded_ranges(self):
        assert not is_public(10)
        assert not is_public(127)
        assert not is_public(240)
        assert is_public(8)


class TestCorpusRepeatability:
    def test_generators_are_restartable(self, corpus):
        """Generators can be consumed twice (fresh iterators)."""
        first = list(corpus.fqdns(20))
        second = list(corpus.fqdns(20))
        assert first == second

    def test_base_domains_offset(self, corpus):
        a = list(corpus.base_domains(50))
        b = list(corpus.base_domains(50, start=200))
        assert not (set(a) & set(b)) or a != b
