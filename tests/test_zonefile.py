"""Tests for presentation-format parsing, zone files, and the static
zone server."""

import pytest

from repro.dnslib import (
    Message,
    Name,
    Rcode,
    RRType,
    TextParseError,
    ZoneParseError,
    parse_zone,
    rdata_from_text,
)
from repro.dnslib.rdata.address import A
from repro.dnslib.rdata.mail import MX
from repro.dnslib.rdata.names import SOA
from repro.dnslib.rdata.security import CAA
from repro.dnslib.rdata.text import TXT
from repro.ecosystem.staticzone import StaticZoneServer
from repro.net import UDPServer, UDPTransport

N = Name.from_text

EXAMPLE_ZONE = """\
$ORIGIN example.com.
$TTL 3600
@       IN SOA ns1.example.com. hostmaster.example.com. (
            2022102501 ; serial
            7200 900 1209600 86400 )
@       IN NS  ns1
@       IN NS  ns2.example.net.
@       300 IN A  192.0.2.1
        IN MX  10 mail
www     IN CNAME @
mail    IN A   192.0.2.25
txt     IN TXT "hello world" "second"
caa     IN CAA 0 issue "letsencrypt.org"
_sip._tcp IN SRV 0 5 5060 sip
sub     IN DS  12345 8 2 ABCDEF0123456789ABCDEF0123456789ABCDEF0123456789ABCDEF0123456789
"""


class TestRdataFromText:
    def test_a(self):
        assert rdata_from_text("A", "10.1.2.3") == A("10.1.2.3")

    def test_mx_with_origin(self):
        rdata = rdata_from_text("MX", "10 mail", origin=N("example.org"))
        assert rdata == MX(10, N("mail.example.org"))

    def test_txt_quoted(self):
        rdata = rdata_from_text("TXT", '"v=spf1 -all"')
        assert rdata == TXT([b"v=spf1 -all"])

    def test_caa(self):
        rdata = rdata_from_text("CAA", '0 issue "ca.example"')
        assert rdata == CAA(0, b"issue", b"ca.example")

    def test_soa(self):
        rdata = rdata_from_text(
            "SOA", "ns1.example.com. admin.example.com. 1 2 3 4 5"
        )
        assert isinstance(rdata, SOA)
        assert rdata.serial == 1
        assert rdata.minimum == 5

    def test_generic_rfc3597(self):
        rdata = rdata_from_text("A", r"\# 4 c0000201")
        assert rdata.data == b"\xc0\x00\x02\x01"

    def test_generic_length_mismatch(self):
        with pytest.raises(TextParseError):
            rdata_from_text("A", r"\# 3 c0000201")

    def test_relative_name_without_origin(self):
        with pytest.raises(TextParseError):
            rdata_from_text("NS", "ns1")

    def test_missing_fields(self):
        with pytest.raises(TextParseError):
            rdata_from_text("MX", "10")

    def test_unsupported_type(self):
        with pytest.raises(TextParseError):
            rdata_from_text("NSEC", "next.example.com. A NS")

    def test_roundtrip_through_text(self):
        for rrtype, text in [
            ("A", "192.0.2.7"),
            ("MX", "5 mx.example.com."),
            ("SRV", "0 5 443 host.example.com."),
            ("TLSA", "3 1 1 ABCD"),
        ]:
            rdata = rdata_from_text(rrtype, text)
            again = rdata_from_text(rrtype, rdata.to_text())
            assert rdata == again


class TestZoneParsing:
    @pytest.fixture(scope="class")
    def zone(self):
        return parse_zone(EXAMPLE_ZONE)

    def test_origin_from_directive(self, zone):
        assert zone.origin == N("example.com")

    def test_record_count(self, zone):
        assert len(zone.records) == 11

    def test_multiline_soa(self, zone):
        soa = zone.find("example.com.", RRType.SOA)[0]
        assert soa.rdata.serial == 2022102501
        assert soa.rdata.expire == 1209600

    def test_owner_inheritance(self, zone):
        mx = zone.find("example.com.", RRType.MX)[0]
        assert mx.rdata.exchange == N("mail.example.com")

    def test_relative_and_absolute_ns(self, zone):
        targets = {record.rdata.target for record in zone.find("example.com.", RRType.NS)}
        assert targets == {N("ns1.example.com"), N("ns2.example.net")}

    def test_explicit_ttl_overrides_default(self, zone):
        a = zone.find("example.com.", RRType.A)[0]
        assert a.ttl == 300
        mail = zone.find("mail", RRType.A)[0]
        assert mail.ttl == 3600

    def test_at_as_cname_target(self, zone):
        www = zone.find("www", RRType.CNAME)[0]
        assert www.rdata.target == N("example.com")

    def test_multiple_txt_strings(self, zone):
        txt = zone.find("txt", RRType.TXT)[0]
        assert txt.rdata.strings == (b"hello world", b"second")

    def test_underscore_names(self, zone):
        srv = zone.find("_sip._tcp", RRType.SRV)[0]
        assert srv.rdata.port == 5060

    def test_comments_stripped(self):
        zone = parse_zone("@ IN A 1.2.3.4 ; trailing comment\n", origin="x.test.")
        assert zone.records[0].rdata == A("1.2.3.4")

    def test_semicolon_inside_quotes_kept(self):
        zone = parse_zone('@ IN TXT "a;b"\n', origin="x.test.")
        assert zone.records[0].rdata.strings == (b"a;b",)

    def test_unclosed_paren_rejected(self):
        with pytest.raises(ZoneParseError):
            parse_zone("@ IN SOA ns. adm. ( 1 2 3 4\n", origin="x.test.")

    def test_unknown_directive_rejected(self):
        with pytest.raises(ZoneParseError):
            parse_zone("$BOGUS foo\n")

    def test_relative_owner_without_origin_rejected(self):
        with pytest.raises(ZoneParseError):
            parse_zone("www IN A 1.2.3.4\n")

    def test_records_roundtrip_wire(self, zone):
        from repro.dnslib import WireReader, WireWriter, ResourceRecord

        for record in zone.records:
            writer = WireWriter()
            record.to_wire(writer)
            decoded = ResourceRecord.from_wire(WireReader(writer.getvalue()))
            assert decoded.rdata == record.rdata


class TestStaticZoneServer:
    @pytest.fixture(scope="class")
    def server(self):
        return StaticZoneServer(parse_zone(EXAMPLE_ZONE))

    def ask(self, server, name, rrtype=RRType.A):
        return server.build_response(Message.make_query(name, rrtype, txid=3))

    def test_positive_answer(self, server):
        response = self.ask(server, "mail.example.com")
        assert response.rcode == Rcode.NOERROR
        assert response.answers[0].rdata == A("192.0.2.25")
        assert response.flags.authoritative

    def test_cname_chased_within_zone(self, server):
        response = self.ask(server, "www.example.com")
        types = [int(record.rrtype) for record in response.answers]
        assert int(RRType.CNAME) in types
        assert int(RRType.A) in types

    def test_nxdomain_with_soa(self, server):
        response = self.ask(server, "missing.example.com")
        assert response.rcode == Rcode.NXDOMAIN
        assert response.authorities[0].rrtype == RRType.SOA

    def test_nodata(self, server):
        response = self.ask(server, "mail.example.com", RRType.MX)
        assert response.rcode == Rcode.NOERROR
        assert not response.answers
        assert response.authorities

    def test_out_of_zone_refused(self, server):
        assert self.ask(server, "other.example.net").rcode == Rcode.REFUSED

    def test_any_query(self, server):
        response = self.ask(server, "example.com", RRType.ANY)
        assert len(response.answers) >= 4

    def test_served_over_real_udp(self, server):
        with UDPServer(server.live_handler) as udp_server:
            with UDPTransport() as transport:
                query = Message.make_query("caa.example.com", RRType.CAA, txid=9)
                response = transport.query(query, udp_server.address, timeout=2.0)
        assert response.answers[0].rdata == CAA(0, b"issue", b"letsencrypt.org")


class TestZoneSerialisation:
    def test_roundtrip(self):
        from repro.dnslib import zone_to_text

        zone = parse_zone(EXAMPLE_ZONE)
        text = zone_to_text(zone)
        again = parse_zone(text)
        assert again.origin == zone.origin
        assert len(again.records) == len(zone.records)
        for a, b in zip(zone.records, again.records):
            assert a.name == b.name
            assert int(a.rrtype) == int(b.rrtype)
            assert a.rdata == b.rdata
