"""Tests for procedural zone synthesis: determinism and statistics."""

import pytest

from repro.dnslib import Name
from repro.ecosystem import EcosystemParams, ZoneSynthesizer
from repro.ecosystem.params import CCTLDS, LEGACY_GTLDS

N = Name.from_text


@pytest.fixture(scope="module")
def synth():
    return ZoneSynthesizer(EcosystemParams(seed=11))


def sample_domains(count, tld="com", start=0):
    return [N(f"domain-{i}.{tld}") for i in range(start, start + count)]


class TestDeterminism:
    def test_same_name_same_profile(self, synth):
        fresh = ZoneSynthesizer(EcosystemParams(seed=11))
        for name in sample_domains(50):
            a = synth.profile(name)
            b = fresh.profile(name)
            assert a.exists == b.exists
            assert a.provider.name == b.provider.name
            assert [ns.ip for ns in a.nameservers] == [ns.ip for ns in b.nameservers]

    def test_different_seed_different_universe(self):
        a = ZoneSynthesizer(EcosystemParams(seed=1))
        b = ZoneSynthesizer(EcosystemParams(seed=2))
        names = sample_domains(200)
        differences = sum(
            a.profile(n).exists != b.profile(n).exists for n in names
        )
        assert differences > 0

    def test_ptr_deterministic(self, synth):
        assert synth.ptr_status("23.45.67.89") == synth.ptr_status("23.45.67.89")
        assert synth.ptr_target("23.45.67.89") == synth.ptr_target("23.45.67.89")

    def test_host_addresses_deterministic(self, synth):
        assert synth.host_addresses(N("a.b.com")) == synth.host_addresses(N("a.b.com"))


class TestBaseDomainMapping:
    def test_simple(self, synth):
        assert synth.base_domain_of(N("www.example.com")) == N("example.com")

    def test_deep(self, synth):
        assert synth.base_domain_of(N("a.b.c.example.de")) == N("example.de")

    def test_unknown_tld(self, synth):
        assert synth.base_domain_of(N("host.internal")) is None

    def test_bare_tld(self, synth):
        assert synth.base_domain_of(N("com")) is None


class TestStatistics:
    def test_existence_rate_matches_params(self, synth):
        names = sample_domains(4000)
        rate = sum(synth.profile(n).exists for n in names) / len(names)
        # p_base_exists = 0.70 / 0.9 ~= 0.78
        assert 0.74 <= rate <= 0.82

    def test_fqdn_resolution_rate_near_70_percent(self, synth):
        resolving = 0
        total = 4000
        for i in range(total):
            fqdn = N(f"www{i}.domain-{i}.com")
            profile = synth.profile(synth.base_domain_of(fqdn))
            if profile.exists and synth.subdomain_exists(fqdn, profile):
                resolving += 1
        assert 0.64 <= resolving / total <= 0.76

    def test_dead_rate_small(self, synth):
        names = sample_domains(5000)
        dead = sum(synth.profile(n).dead for n in names) / len(names)
        assert 0.01 <= dead <= 0.04

    def test_truncation_rate_near_paper(self, synth):
        names = sample_domains(20000)
        rate = sum(synth.profile(n).truncates for n in names) / len(names)
        assert 0.002 <= rate <= 0.007  # paper: 0.4%

    def test_flaky_nameserver_rate(self, synth):
        """Section 5: ~0.55% of resolvable domains have a blocking NS."""
        names = sample_domains(20000)
        flaky = 0
        total = 0
        for name in names:
            profile = synth.profile(name)
            if not profile.exists:
                continue
            total += 1
            if any(ns.drop_prob > 0 for ns in profile.nameservers):
                flaky += 1
        assert 0.004 <= flaky / total <= 0.035

    def test_vn_domains_flakier_than_com(self, synth):
        def flaky_rate(tld):
            flagged = 0
            count = 3000
            for name in sample_domains(count, tld):
                profile = synth.profile(name)
                if any(ns.drop_prob > 0 for ns in profile.nameservers):
                    flagged += 1
            return flagged / count

        assert flaky_rate("vn") > 3 * flaky_rate("com")

    def test_provider_share_roughly_matches_weights(self, synth):
        names = sample_domains(6000)
        cloudflare = sum(
            synth.profile(n).provider.name == "cloudflare-dns.example" for n in names
        )
        assert 0.08 <= cloudflare / len(names) <= 0.16  # weight 0.12

    def test_ptr_rates(self, synth):
        # spread samples over many distinct /24 zones
        statuses = [
            synth.ptr_status(f"23.{(i // 256) % 256}.{i % 256}.{(i * 37) % 256}")
            for i in range(6000)
        ]
        noerror = statuses.count("noerror") / len(statuses)
        dead = statuses.count("dead") / len(statuses)
        assert 0.50 <= noerror <= 0.60  # p_ptr_exists = 0.55
        assert 0.03 <= dead <= 0.08


class TestCAAProfiles:
    def collect(self, synth, tld, count=30000):
        profiles = []
        for name in sample_domains(count, tld):
            profile = synth.profile(name)
            if profile.exists:
                profiles.append(profile)
        return profiles

    def test_caa_rate_gtld(self, synth):
        profiles = self.collect(synth, "com")
        rate = sum(p.caa is not None for p in profiles) / len(profiles)
        assert 0.010 <= rate <= 0.022  # paper: 1.69% overall

    def test_cctld_more_likely_than_gtld(self, synth):
        com = self.collect(synth, "com", 40000)
        de = self.collect(synth, "de", 40000)
        com_rate = sum(p.caa is not None for p in com) / len(com)
        de_rate = sum(p.caa is not None for p in de) / len(de)
        assert de_rate > com_rate

    def test_pl_is_caa_heavy(self, synth):
        pl = self.collect(synth, "pl", 20000)
        de = self.collect(synth, "de", 20000)
        pl_rate = sum(p.caa is not None for p in pl) / len(pl)
        de_rate = sum(p.caa is not None for p in de) / len(de)
        assert pl_rate > 4 * de_rate

    def test_tag_mix(self, synth):
        records = [p.caa for p in self.collect(synth, "com", 120000) if p.caa]
        issue = sum(bool(c.issue) for c in records) / len(records)
        issuewild = sum(bool(c.issuewild) for c in records) / len(records)
        iodef = sum(bool(c.iodef) for c in records) / len(records)
        assert 0.93 <= issue <= 1.0  # paper: 96.8%
        assert 0.48 <= issuewild <= 0.62  # paper: 55.27%
        assert 0.04 <= iodef <= 0.10  # paper: 6.87%

    def test_letsencrypt_dominates_issue(self, synth):
        records = [p.caa for p in self.collect(synth, "com", 120000) if p.caa]
        with_issue = [c for c in records if c.issue]
        le = sum("letsencrypt.org" in c.issue for c in with_issue) / len(with_issue)
        assert le >= 0.88  # paper: 92.4%

    def test_nonexistent_domains_have_no_caa(self, synth):
        for name in sample_domains(2000, "com", start=50_000):
            profile = synth.profile(name)
            if not profile.exists:
                assert profile.caa is None


class TestInfraAddressBook:
    def test_tld_ns_resolvable(self, synth):
        name = synth.tld_ns_name("com", 0)
        assert synth.infra_a_record(name) == synth.tld_ns_ip("com", 0)

    def test_provider_ns_resolvable(self, synth):
        name = synth.provider_ns_name(0, 1)
        assert synth.infra_a_record(name) == synth.provider_ns_ip(0, 1)

    def test_rdns_ns_resolvable(self, synth):
        name = synth.rdns_ns_name(17, 1)
        assert synth.infra_a_record(name) == synth.rdns_ns_ip(17, 1)

    def test_unknown_names_return_none(self, synth):
        assert synth.infra_a_record(N("ns1.unknown-host.example")) is None
        assert synth.infra_a_record(N("www.google.com")) is None
        assert synth.infra_a_record(N("nsX.nic-com.example")) is None

    def test_distinct_server_ips(self, synth):
        ips = {synth.tld_ns_ip(t, k) for t, _ in synth.tlds() for k in range(2)}
        ips |= {synth.provider_ns_ip(i, 0) for i in range(len(synth.params.providers))}
        ips |= {synth.rdns_ns_ip(op, k) for op in range(8) for k in range(2)}
        # no collisions across tiers
        count = len(synth.tlds()) * 2 + len(synth.params.providers) + 16
        assert len(ips) == count
